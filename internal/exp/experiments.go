package exp

import (
	"fmt"
	"math/rand"

	"graphrnn/internal/core"
	"graphrnn/internal/gen"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// Experiment is a named reproduction of one table or figure.
type Experiment struct {
	Name  string
	Paper string
	Run   func(Scale) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: ad-hoc queries (DBLP-like, k=1)", Table1},
		{"table2", "Table 2: cost vs density (DBLP-like, k=1)", Table2},
		{"fig15", "Fig 15: cost vs |V| (BRITE-like, D=0.01, k=1)", Fig15},
		{"fig16", "Fig 16: cost vs D (BRITE-like, k=1)", Fig16},
		{"fig17", "Fig 17: cost vs D (SF-like, k=1)", Fig17},
		{"fig18", "Fig 18: cost vs k (SF-like, D=0.01)", Fig18},
		{"fig19", "Fig 19: continuous queries vs route size (SF-like, D=0.01, k=1)", Fig19},
		{"fig20a", "Fig 20a: grid maps, cost vs |V| (degree 4, D=0.01, k=1)", Fig20a},
		{"fig20b", "Fig 20b: grid maps, cost vs degree (D=0.01, k=1)", Fig20b},
		{"fig21", "Fig 21: cost vs buffer size (SF-like, D=0.01, k=1)", Fig21},
		{"fig22a", "Fig 22a: update cost vs D (SF-like, K=1)", Fig22a},
		{"fig22b", "Fig 22b: update cost vs K (SF-like, D=0.01)", Fig22b},
		{"hub", "Hub-label substrate vs |V| (road-like restricted, D=0.01, k=1)", HubSubstrate},
		{"budget", "Budgeted queries: degradation under per-query node budgets (road-like, D=0.01, k=2)", Budgeted},
		{"plan", "Planner auto-selection vs eager across attachment states (road-like, D=0.01, k=2)", Planner},
		{"shard", "Sharded scatter-gather vs unsharded engine across shard counts (road-like, D=0.01, k=2)", ShardedServing},
	}
}

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// densities is the sweep used by Table 2 and Figs 16-17 (the paper caps
// density at 0.1; see Section 6).
var densities = []float64{0.0025, 0.005, 0.01, 0.02, 0.04, 0.08}

// restrictedQuery dispatches one restricted monochromatic query. hidden is
// the point excluded by view (points.NoPoint for none) — the hub-label
// substrate needs it explicitly, the expansion algorithms read the view.
func (e *env) restrictedQuery(a Algo, view points.NodeView, qnode graph.NodeID, k int, hidden points.PointID) (*core.Result, error) {
	switch a {
	case AlgoEager:
		return e.searcher.EagerRkNN(view, qnode, k)
	case AlgoEagerM:
		return e.searcher.EagerMRkNN(view, e.mat, qnode, k)
	case AlgoLazy:
		return e.searcher.LazyRkNN(view, qnode, k)
	case AlgoLazyEP:
		return e.searcher.LazyEPRkNN(view, qnode, k)
	case AlgoHub:
		if e.hubIdx == nil {
			return nil, fmt.Errorf("exp: hub-label index not built for this environment")
		}
		pts, _, err := e.hubIdx.RkNN(qnode, k, hidden)
		if err != nil {
			return nil, err
		}
		return &core.Result{Points: pts}, nil
	}
	return nil, fmt.Errorf("exp: unknown algorithm %q", a)
}

// unrestrictedQuery dispatches one unrestricted monochromatic query.
func (e *env) unrestrictedQuery(a Algo, view points.EdgeView, q core.Loc, k int) (*core.Result, error) {
	switch a {
	case AlgoEager:
		return e.searcher.UEagerRkNN(view, q, k)
	case AlgoEagerM:
		return e.searcher.UEagerMRkNN(view, e.mat, q, k)
	case AlgoLazy:
		return e.searcher.ULazyRkNN(view, q, k)
	case AlgoLazyEP:
		return e.searcher.ULazyEPRkNN(view, q, k)
	}
	return nil, fmt.Errorf("exp: unknown algorithm %q", a)
}

// restrictedRow measures all algos over one restricted workload.
func (e *env) restrictedRow(queries []points.PointID, k int, algos []Algo, coldPerQuery bool) ([]Measure, error) {
	row := make([]Measure, len(algos))
	for ai, a := range algos {
		m, err := e.runWorkloadOpt(len(queries), coldPerQuery, func(i int) (*core.Result, error) {
			qp := queries[i]
			qnode, ok := e.nodePts.NodeOf(qp)
			if !ok {
				return nil, fmt.Errorf("exp: query point %d missing", qp)
			}
			return e.restrictedQuery(a, points.ExcludeNode(e.nodePts, qp), qnode, k, qp)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a, err)
		}
		row[ai] = m
	}
	return row, nil
}

// unrestrictedRow measures all algos over one unrestricted workload.
func (e *env) unrestrictedRow(queries []points.PointID, k int, algos []Algo) ([]Measure, error) {
	row := make([]Measure, len(algos))
	for ai, a := range algos {
		m, err := e.runWorkload(len(queries), func(i int) (*core.Result, error) {
			qp := queries[i]
			loc, ok := e.pagedEP.Loc(qp)
			if !ok {
				return nil, fmt.Errorf("exp: query point %d missing", qp)
			}
			view := points.ExcludeEdge(e.pagedEP, qp)
			return e.unrestrictedQuery(a, view, core.PointLoc(loc), k)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a, err)
		}
		row[ai] = m
	}
	return row, nil
}

// Table1 reproduces the ad-hoc DBLP queries: the point set is defined at
// query time by a predicate ("authors with exactly c papers in venue 0"),
// so materialization is impossible and only eager and lazy compete. The
// predicate count sweeps 0, 1, 2 with increasing selectivity. The DBLP
// graph is small enough to fit any reasonable buffer, so queries run cold
// to expose the I/O difference (see EXPERIMENTS.md).
func Table1(s Scale) (*Table, error) {
	co, err := gen.NewCoauthorship(gen.DefaultCoauthorship(s.seed()))
	if err != nil {
		return nil, err
	}
	e, err := newEnv(co.G, DefaultBufferPages)
	if err != nil {
		return nil, err
	}
	defer e.close()
	rng := rand.New(rand.NewSource(s.seed() + 1))
	t := &Table{
		ID:      "Table 1",
		Title:   fmt.Sprintf("ad-hoc queries, DBLP-like |V|=%d |E|=%d, k=1", co.G.NumNodes(), co.G.NumEdges()),
		XLabel:  "papers",
		Columns: EagerLazy,
	}
	for _, count := range []int{0, 1, 2} {
		nodes := co.AuthorsWithVenueCount(0, count)
		if len(nodes) < 2 {
			return nil, fmt.Errorf("exp: predicate papers=%d matches %d authors", count, len(nodes))
		}
		ps, err := gen.PlaceNodePointsOn(rng, co.G.NumNodes(), nodes)
		if err != nil {
			return nil, err
		}
		e.nodePts = ps
		queries := gen.SampleQueries(rng, ps.Points(), s.queries())
		row, err := e.restrictedRow(queries, 1, EagerLazy, true)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("=%d (%d pts)", count, len(nodes)))
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Table2 reproduces cost vs density on the DBLP-like graph: random
// "interesting" nodes at each density, k=1, eager vs lazy, cold queries.
func Table2(s Scale) (*Table, error) {
	co, err := gen.NewCoauthorship(gen.DefaultCoauthorship(s.seed()))
	if err != nil {
		return nil, err
	}
	e, err := newEnv(co.G, DefaultBufferPages)
	if err != nil {
		return nil, err
	}
	defer e.close()
	rng := rand.New(rand.NewSource(s.seed() + 2))
	t := &Table{
		ID:      "Table 2",
		Title:   fmt.Sprintf("cost vs density, DBLP-like |V|=%d, k=1", co.G.NumNodes()),
		XLabel:  "density",
		Columns: EagerLazy,
	}
	for _, d := range densities {
		count := int(d * float64(co.G.NumNodes()))
		if count < 2 {
			count = 2
		}
		if err := e.withNodePoints(rng, count); err != nil {
			return nil, err
		}
		queries := gen.SampleQueries(rng, e.nodePts.Points(), s.queries())
		row, err := e.restrictedRow(queries, 1, EagerLazy, true)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%.4f", d))
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// briteEnv builds a BRITE-like restricted environment with density d and
// materialized lists for maxK.
func briteEnv(seed int64, nodes int, d float64, maxK, bufferPages int) (*env, error) {
	g, err := gen.Brite(gen.BriteConfig{Seed: seed, Nodes: nodes, AvgDegree: 4})
	if err != nil {
		return nil, err
	}
	e, err := newEnv(g, bufferPages)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 7))
	if err := e.withNodePoints(rng, max(2, int(d*float64(g.NumNodes())))); err != nil {
		_ = e.close()
		return nil, err
	}
	if err := e.materializeNode(maxK); err != nil {
		_ = e.close()
		return nil, err
	}
	return e, nil
}

// Fig15 reproduces cost vs |V| on BRITE-like topologies (D=0.01, k=1):
// the exponential-expansion scenario where the lazy variants collapse.
func Fig15(s Scale) (*Table, error) {
	sizes := []int{10000, 20000, 40000}
	if s.Full {
		sizes = []int{90000, 160000, 250000, 360000}
	}
	t := &Table{
		ID:      "Fig 15",
		Title:   "cost vs |V|, BRITE-like, D=0.01, k=1",
		XLabel:  "|V|",
		Columns: AllAlgos,
	}
	for _, n := range sizes {
		e, err := briteEnv(s.seed(), n, 0.01, 1, s.bufferPages())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 8))
		queries := gen.SampleQueries(rng, e.nodePts.Points(), s.queries())
		row, err := e.restrictedRow(queries, 1, AllAlgos, false)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%d", n))
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Fig16 reproduces cost vs density on a fixed BRITE-like topology.
func Fig16(s Scale) (*Table, error) {
	n := s.pick(40000, 160000)
	t := &Table{
		ID:      "Fig 16",
		Title:   fmt.Sprintf("cost vs D, BRITE-like |V|=%d, k=1", n),
		XLabel:  "density",
		Columns: AllAlgos,
	}
	for _, d := range densities {
		e, err := briteEnv(s.seed(), n, d, 1, s.bufferPages())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 9))
		queries := gen.SampleQueries(rng, e.nodePts.Points(), s.queries())
		row, err := e.restrictedRow(queries, 1, AllAlgos, false)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%.4f", d))
		t.Cells = append(t.Cells, row)
		_ = e.close()
	}
	return t, nil
}

// sfEnv builds a San-Francisco-like unrestricted environment.
func sfEnv(seed int64, nodes int, d float64, maxK, bufferPages int) (*env, error) {
	g, err := gen.RoadNetwork(gen.RoadConfig{Seed: seed, Nodes: nodes})
	if err != nil {
		return nil, err
	}
	e, err := newEnv(g, bufferPages)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 11))
	if err := e.withEdgePoints(rng, max(2, int(d*float64(g.NumNodes())))); err != nil {
		_ = e.close()
		return nil, err
	}
	if maxK > 0 {
		if err := e.materializeEdge(maxK); err != nil {
			_ = e.close()
			return nil, err
		}
	}
	return e, nil
}

// Fig17 reproduces cost vs density on the SF-like unrestricted network.
func Fig17(s Scale) (*Table, error) {
	n := s.pick(40000, 175000)
	t := &Table{
		ID:      "Fig 17",
		Title:   fmt.Sprintf("cost vs D, SF-like |V|≈%d (unrestricted), k=1", n),
		XLabel:  "density",
		Columns: AllAlgos,
	}
	for _, d := range densities {
		e, err := sfEnv(s.seed(), n, d, 1, s.bufferPages())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 12))
		queries := gen.SampleQueries(rng, e.edgePts.Points(), s.queries())
		row, err := e.unrestrictedRow(queries, 1, AllAlgos)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%.4f", d))
		t.Cells = append(t.Cells, row)
		_ = e.close()
	}
	return t, nil
}

// Fig18 reproduces cost vs k on the SF-like network (D=0.01).
func Fig18(s Scale) (*Table, error) {
	n := s.pick(40000, 175000)
	e, err := sfEnv(s.seed(), n, 0.01, 8, s.bufferPages())
	if err != nil {
		return nil, err
	}
	defer e.close()
	rng := rand.New(rand.NewSource(s.seed() + 13))
	queries := gen.SampleQueries(rng, e.edgePts.Points(), s.queries())
	t := &Table{
		ID:      "Fig 18",
		Title:   fmt.Sprintf("cost vs k, SF-like |V|≈%d, D=0.01", n),
		XLabel:  "k",
		Columns: AllAlgos,
	}
	for _, k := range []int{1, 2, 4, 8} {
		row, err := e.unrestrictedRow(queries, k, AllAlgos)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%d", k))
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Fig19 reproduces continuous queries vs route size (SF-like, D=0.01,
// k=1): routes are random walks without repeated nodes.
func Fig19(s Scale) (*Table, error) {
	n := s.pick(40000, 175000)
	e, err := sfEnv(s.seed(), n, 0.01, 1, s.bufferPages())
	if err != nil {
		return nil, err
	}
	defer e.close()
	rng := rand.New(rand.NewSource(s.seed() + 14))
	sizes := []int{1, 2, 4, 8, 16, 32}
	if s.Full {
		sizes = []int{1, 2, 4, 8, 16, 32, 64}
	}
	t := &Table{
		ID:      "Fig 19",
		Title:   fmt.Sprintf("continuous cost vs route size, SF-like |V|≈%d, D=0.01, k=1", n),
		XLabel:  "route",
		Columns: AllAlgos,
	}
	for _, size := range sizes {
		routes := make([][]graph.NodeID, s.queries())
		for i := range routes {
			routes[i] = gen.RandomWalkRoute(rng, e.g, size)
		}
		row := make([]Measure, len(AllAlgos))
		for ai, a := range AllAlgos {
			m, err := e.runWorkload(len(routes), func(i int) (*core.Result, error) {
				switch a {
				case AlgoEager:
					return e.searcher.UEagerContinuous(e.pagedEP, routes[i], 1)
				case AlgoEagerM:
					return e.searcher.UEagerMContinuous(e.pagedEP, e.mat, routes[i], 1)
				case AlgoLazy:
					return e.searcher.ULazyContinuous(e.pagedEP, routes[i], 1)
				default:
					return e.searcher.ULazyEPContinuous(e.pagedEP, routes[i], 1)
				}
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", a, err)
			}
			row[ai] = m
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%d", size))
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// gridEnv builds a grid-map unrestricted environment.
func gridEnv(seed int64, nodes int, degree float64, d float64, maxK, bufferPages int) (*env, error) {
	g, err := gen.Grid(gen.GridConfig{Seed: seed, Nodes: nodes, Degree: degree})
	if err != nil {
		return nil, err
	}
	e, err := newEnv(g, bufferPages)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 15))
	if err := e.withEdgePoints(rng, max(2, int(d*float64(g.NumNodes())))); err != nil {
		_ = e.close()
		return nil, err
	}
	if err := e.materializeEdge(maxK); err != nil {
		_ = e.close()
		return nil, err
	}
	return e, nil
}

// Fig20a reproduces grid maps: cost vs |V| at degree 4.
func Fig20a(s Scale) (*Table, error) {
	sizes := []int{10000, 22500, 40000}
	if s.Full {
		sizes = []int{40000, 90000, 160000}
	}
	t := &Table{
		ID:      "Fig 20a",
		Title:   "grid maps: cost vs |V| (degree 4, D=0.01, k=1)",
		XLabel:  "|V|",
		Columns: AllAlgos,
	}
	for _, n := range sizes {
		e, err := gridEnv(s.seed(), n, 4, 0.01, 1, s.bufferPages())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 16))
		queries := gen.SampleQueries(rng, e.edgePts.Points(), s.queries())
		row, err := e.unrestrictedRow(queries, 1, AllAlgos)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%d", e.g.NumNodes()))
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Fig20b reproduces grid maps: cost vs average degree.
func Fig20b(s Scale) (*Table, error) {
	n := s.pick(40000, 160000)
	t := &Table{
		ID:      "Fig 20b",
		Title:   fmt.Sprintf("grid maps: cost vs degree (|V|=%d, D=0.01, k=1)", n),
		XLabel:  "degree",
		Columns: AllAlgos,
	}
	for _, deg := range []float64{4, 5, 6, 7} {
		e, err := gridEnv(s.seed(), n, deg, 0.01, 1, s.bufferPages())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 17))
		queries := gen.SampleQueries(rng, e.edgePts.Points(), s.queries())
		row, err := e.unrestrictedRow(queries, 1, AllAlgos)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%.0f", deg))
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Fig21 reproduces cost vs LRU buffer size (SF-like, D=0.01, k=1): at
// buffer 0 every access is physical and eager's repeated local expansions
// dominate; a small buffer flips the ranking.
func Fig21(s Scale) (*Table, error) {
	n := s.pick(40000, 175000)
	buffers := []int{0, 16, 64, 256, 1024}
	t := &Table{
		ID:      "Fig 21",
		Title:   fmt.Sprintf("cost vs buffer pages, SF-like |V|≈%d, D=0.01, k=1", n),
		XLabel:  "buffer",
		Columns: EagerLazy,
	}
	g, err := gen.RoadNetwork(gen.RoadConfig{Seed: s.seed(), Nodes: n})
	if err != nil {
		return nil, err
	}
	for _, buf := range buffers {
		e, err := newEnv(g, buf)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 18))
		if err := e.withEdgePoints(rng, max(2, int(0.01*float64(g.NumNodes())))); err != nil {
			return nil, err
		}
		// The point file shares the buffer budget.
		paged, err := points.NewPagedEdgeSet(e.edgePts, newMemPageFile(), buf)
		if err != nil {
			return nil, err
		}
		e.pagedEP = paged
		queries := gen.SampleQueries(rng, e.edgePts.Points(), s.queries())
		row, err := e.unrestrictedRow(queries, 1, EagerLazy)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%d", buf))
		t.Cells = append(t.Cells, row)
		_ = e.close()
	}
	return t, nil
}

// HubSubstrate compares all five substrates on a road-like restricted
// workload (node-resident points, D=0.01, k=1) across network sizes — the
// setting where 2-hop labels shine: every query is a handful of label
// intersections while the expansion algorithms traverse the network. Not a
// paper figure; it measures the extension against the paper's algorithms
// under the paper's cost model.
func HubSubstrate(s Scale) (*Table, error) {
	sizes := []int{10000, 20000}
	if s.Full {
		sizes = []int{40000, 90000, 175000}
	}
	t := &Table{
		ID:      "Hub",
		Title:   "hub-label substrate vs |V|, road-like restricted, D=0.01, k=1",
		XLabel:  "|V|",
		Columns: AllSubstrates,
	}
	for _, n := range sizes {
		g, err := gen.RoadNetwork(gen.RoadConfig{Seed: s.seed(), Nodes: n})
		if err != nil {
			return nil, err
		}
		e, err := newEnv(g, s.bufferPages())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 23))
		if err := e.withNodePoints(rng, max(2, int(0.01*float64(g.NumNodes())))); err != nil {
			return nil, err
		}
		if err := e.materializeNode(1); err != nil {
			return nil, err
		}
		if err := e.buildHubLabel(1); err != nil {
			return nil, err
		}
		queries := gen.SampleQueries(rng, e.nodePts.Points(), s.queries())
		row, err := e.restrictedRow(queries, 1, AllSubstrates, false)
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%d", g.NumNodes()))
		t.Cells = append(t.Cells, row)
		bst := e.hubBuild
		t.Notes = append(t.Notes, fmt.Sprintf(
			"HL build |V|=%d: %.3fs, %d workers, %d batches, %d pruned visits, %d resweeps, labels %dB compressed / %dB raw",
			g.NumNodes(), bst.Wall.Seconds(), bst.Workers, bst.Batches, bst.Pruned, bst.Resweeps,
			e.hubStore.PayloadBytes(), e.hubStore.RawBytes()))
		_ = e.close()
	}
	return t, nil
}

// updateAlgos are the two columns of Fig 22.
var updateAlgos = []Algo{"insert", "delete"}

// updateRow measures insertion and deletion maintenance cost on a prepared
// unrestricted environment with materialized lists.
func (e *env) updateRow(rng *rand.Rand, n int) ([]Measure, error) {
	el := gen.Edges(e.g)
	// Insertions at random locations (following the network distribution).
	ins, err := e.runWorkload(n, func(i int) (*core.Result, error) {
		ei := rng.Intn(len(el.U))
		pos := rng.Float64() * el.W[ei]
		p, err := e.edgePts.Place(el.U[ei], el.V[ei], pos)
		if err != nil {
			return nil, err
		}
		seeds := []core.MatSeed{
			{Node: el.U[ei], P: p, D: pos},
			{Node: el.V[ei], P: p, D: el.W[ei] - pos},
		}
		st, err := e.searcher.MatInsert(e.mat, seeds)
		if err != nil {
			return nil, err
		}
		if err := e.mat.Flush(); err != nil {
			return nil, err
		}
		return &core.Result{Stats: st}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("insert: %w", err)
	}
	// Deletions of random existing points.
	pts := e.edgePts.Points()
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	if n > len(pts)-1 {
		n = len(pts) - 1
	}
	del, err := e.runWorkload(n, func(i int) (*core.Result, error) {
		p := pts[i]
		loc, ok := e.edgePts.Loc(p)
		if !ok {
			return nil, fmt.Errorf("point %d missing", p)
		}
		w, found := e.g.EdgeWeight(loc.U, loc.V)
		if !found {
			return nil, fmt.Errorf("edge (%d,%d) missing", loc.U, loc.V)
		}
		if err := e.edgePts.Delete(p); err != nil {
			return nil, err
		}
		seeds := []core.MatSeed{
			{Node: loc.U, P: p, D: loc.Pos},
			{Node: loc.V, P: p, D: w - loc.Pos},
		}
		st, err := e.searcher.MatDelete(e.mat, p, seeds)
		if err != nil {
			return nil, err
		}
		if err := e.mat.Flush(); err != nil {
			return nil, err
		}
		return &core.Result{Stats: st}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("delete: %w", err)
	}
	return []Measure{ins, del}, nil
}

// Fig22a reproduces update cost vs density (SF-like, K=1).
func Fig22a(s Scale) (*Table, error) {
	n := s.pick(40000, 175000)
	t := &Table{
		ID:      "Fig 22a",
		Title:   fmt.Sprintf("update cost vs D, SF-like |V|≈%d, K=1", n),
		XLabel:  "density",
		Columns: updateAlgos,
	}
	for _, d := range densities {
		e, err := sfEnv(s.seed(), n, d, 1, s.bufferPages())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 19))
		row, err := e.updateRow(rng, s.queries())
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%.4f", d))
		t.Cells = append(t.Cells, row)
		_ = e.close()
	}
	return t, nil
}

// Fig22b reproduces update cost vs the number K of materialized neighbors
// (SF-like, D=0.01).
func Fig22b(s Scale) (*Table, error) {
	n := s.pick(40000, 175000)
	t := &Table{
		ID:      "Fig 22b",
		Title:   fmt.Sprintf("update cost vs K, SF-like |V|≈%d, D=0.01", n),
		XLabel:  "K",
		Columns: updateAlgos,
	}
	for _, k := range []int{1, 2, 4, 8} {
		e, err := sfEnv(s.seed(), n, 0.01, k, s.bufferPages())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.seed() + 20))
		row, err := e.updateRow(rng, s.queries())
		if err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%d", k))
		t.Cells = append(t.Cells, row)
		_ = e.close()
	}
	return t, nil
}
