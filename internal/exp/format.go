package exp

import (
	"fmt"
	"strings"
)

// Table is the result of one experiment: one row per x-axis setting, one
// Measure per algorithm column.
type Table struct {
	ID      string // e.g. "Table 1", "Fig 17"
	Title   string
	XLabel  string
	Xs      []string
	Columns []Algo
	Cells   [][]Measure // [x][column]
	// Notes are free-form lines appended below the table — build-side
	// observations (construction wall time, worker count, compression
	// ratio) that have no column of their own.
	Notes []string
}

// Format renders the table in the paper's style: per algorithm, the I/O
// count, CPU time and total cost under the 10 ms/I-O model. Rows and
// columns render in the slice order the experiment fixed; the same Table
// always renders the same bytes.
//
// vetrnn:deterministic
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " | %22s", fmt.Sprintf("%s (IO / CPUs / total)", c))
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 12+len(t.Columns)*25))
	b.WriteString("\n")
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "%-12s", x)
		for j := range t.Columns {
			m := t.Cells[i][j]
			fmt.Fprintf(&b, " | %7.1f %6.3f %7.2f", m.IO, m.CPU, m.Total())
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// Series returns the total-cost series of one column, for shape checks.
func (t *Table) Series(col Algo) []float64 {
	idx := -1
	for j, c := range t.Columns {
		if c == col {
			idx = j
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(t.Xs))
	for i := range t.Xs {
		out[i] = t.Cells[i][idx].Total()
	}
	return out
}

// IOSeries returns the I/O series of one column.
func (t *Table) IOSeries(col Algo) []float64 {
	idx := -1
	for j, c := range t.Columns {
		if c == col {
			idx = j
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(t.Xs))
	for i := range t.Xs {
		out[i] = t.Cells[i][idx].IO
	}
	return out
}

// CPUSeries returns the CPU series of one column.
func (t *Table) CPUSeries(col Algo) []float64 {
	idx := -1
	for j, c := range t.Columns {
		if c == col {
			idx = j
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(t.Xs))
	for i := range t.Xs {
		out[i] = t.Cells[i][idx].CPU
	}
	return out
}
