// Package exp is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 6). Each experiment builds the
// network family, the workload (50 queries sampled from the data
// distribution, co-located point excluded) and the storage stack (4 KB
// pages, LRU buffer, materialized lists and edge-point files where
// applicable), runs the requested algorithms, and reports the paper's cost
// model: CPU seconds plus 10 ms per physical page transfer.
//
// Default scales are laptop-sized; Scale{Full: true} switches to the
// paper's sizes. Both print the same series, and EXPERIMENTS.md records
// the shape comparison against the published figures.
package exp

import (
	"fmt"
	"math/rand"
	"time"

	"graphrnn/internal/core"
	"graphrnn/internal/gen"
	"graphrnn/internal/graph"
	"graphrnn/internal/hublabel"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// IOCostSeconds is the charge per random I/O used throughout Section 6.
const IOCostSeconds = 0.010

// DefaultBufferPages is the paper's 1 MB LRU buffer in 4 KB pages.
const DefaultBufferPages = 256

// MatBufferPages is the buffer dedicated to the materialized list file.
const MatBufferPages = 64

// Measure is the average per-query cost of one algorithm at one setting.
type Measure struct {
	IO  float64 // physical page transfers
	CPU float64 // seconds
	// Result size, for sanity reporting.
	Results float64
}

// Total applies the paper's cost model.
func (m Measure) Total() float64 { return m.CPU + m.IO*IOCostSeconds }

// Algo identifies an algorithm column, abbreviated as in Fig 15 ("E", "EM",
// "L", "LP").
type Algo string

const (
	AlgoEager  Algo = "E"
	AlgoEagerM Algo = "EM"
	AlgoLazy   Algo = "L"
	AlgoLazyEP Algo = "LP"
	// AlgoHub is the hub-label substrate ("HL"), beyond the paper: queries
	// answered by label intersection instead of network expansion.
	AlgoHub Algo = "HL"
)

// AllAlgos is the column order of the paper's figures.
var AllAlgos = []Algo{AlgoEager, AlgoEagerM, AlgoLazy, AlgoLazyEP}

// AllSubstrates adds the hub-label column to the paper's four algorithms.
var AllSubstrates = []Algo{AlgoEager, AlgoEagerM, AlgoLazy, AlgoLazyEP, AlgoHub}

// EagerLazy restricts to the two basic algorithms (Tables 1-2, Fig 21).
var EagerLazy = []Algo{AlgoEager, AlgoLazy}

// Scale selects experiment sizes.
type Scale struct {
	// Full runs the paper-scale configuration.
	Full bool
	// Queries overrides the workload size (default 50 full / 20 quick).
	Queries int
	// Seed makes the whole experiment deterministic.
	Seed int64
}

func (s Scale) pick(quick, full int) int {
	if s.Full {
		return full
	}
	return quick
}

func (s Scale) queries() int {
	if s.Queries > 0 {
		return s.Queries
	}
	if s.Full {
		return 50
	}
	return 20
}

func (s Scale) seed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 2006
}

// bufferPages keeps the buffer:graph ratio of the paper (1 MB against the
// 175K-node SF map) when experiments run at the reduced default scale;
// otherwise a quarter-scale graph would fit the buffer entirely and hide
// the I/O behaviour Figs 15-21 measure.
func (s Scale) bufferPages() int {
	if s.Full {
		return DefaultBufferPages
	}
	return 64
}

// env is a prepared network stack for one experiment setting.
type env struct {
	g        *graph.Graph
	store    *storage.DiskStore
	searcher *core.Searcher

	nodePts *points.NodeSet
	edgePts *points.EdgeSet
	pagedEP *points.PagedEdgeSet
	mat     *core.Materialized

	hubStore *hublabel.Store
	hubIdx   *hublabel.Index
	// hubBuild records how the labeling was constructed, for the
	// experiment notes (wall time, workers, batches, compression ratio).
	hubBuild hublabel.BuildStats
}

func newEnv(g *graph.Graph, bufferPages int) (*env, error) {
	store, err := storage.BuildDiskStore(g, storage.NewMemFile(storage.DefaultPageSize), bufferPages, nil)
	if err != nil {
		return nil, err
	}
	return &env{g: g, store: store, searcher: core.NewSearcher(store)}, nil
}

func (e *env) withNodePoints(rng *rand.Rand, count int) error {
	ps, err := gen.PlaceNodePoints(rng, e.g.NumNodes(), count)
	if err != nil {
		return err
	}
	e.nodePts = ps
	return nil
}

func (e *env) withEdgePoints(rng *rand.Rand, count int) error {
	ps, err := gen.PlaceEdgePoints(rng, gen.Edges(e.g), count)
	if err != nil {
		return err
	}
	e.edgePts = ps
	paged, err := points.NewPagedEdgeSet(ps, storage.NewMemFile(storage.DefaultPageSize), MatBufferPages)
	if err != nil {
		return err
	}
	e.pagedEP = paged
	return nil
}

func (e *env) materializeNode(maxK int) error {
	mat, err := e.searcher.MatBuild(core.SeedsRestricted(e.nodePts), maxK,
		storage.NewMemFile(storage.DefaultPageSize), MatBufferPages, nil)
	if err != nil {
		return err
	}
	e.mat = mat
	return nil
}

func (e *env) materializeEdge(maxK int) error {
	seeds, err := core.SeedsUnrestricted(e.edgePts, e.store)
	if err != nil {
		return err
	}
	mat, err := e.searcher.MatBuild(seeds, maxK,
		storage.NewMemFile(storage.DefaultPageSize), MatBufferPages, nil)
	if err != nil {
		return err
	}
	e.mat = mat
	return nil
}

// buildHubLabel builds the 2-hop labeling — batched across every core,
// which cannot change the result (the parallel build is bit-identical to
// the sequential one) — persists it delta-compressed into a paged memory
// file served through its own LRU buffer (so label I/O is counted like the
// other substrates), and indexes the node point set for queries up to maxK.
func (e *env) buildHubLabel(maxK int) error {
	lab, bst, err := hublabel.BuildOpt(e.g, hublabel.BuildOptions{Workers: -1})
	if err != nil {
		return err
	}
	e.hubBuild = bst
	file := newMemPageFile()
	if err := hublabel.WriteOpt(lab, file, hublabel.WriteOptions{Compression: true}); err != nil {
		return err
	}
	store, err := hublabel.OpenStore(file, MatBufferPages)
	if err != nil {
		return err
	}
	e.hubStore = store
	pts := make([]hublabel.PointOnNode, 0, e.nodePts.Len())
	for _, p := range e.nodePts.Points() {
		n, ok := e.nodePts.NodeOf(p)
		if !ok {
			continue // deleted since Points(): nothing to index
		}
		pts = append(pts, hublabel.PointOnNode{P: p, Node: n})
	}
	e.hubIdx, err = hublabel.NewIndex(store, maxK, pts)
	return err
}

// io sums physical transfers across every paged component.
func (e *env) io() int64 {
	total := e.store.Stats().IO()
	if e.mat != nil {
		total += e.mat.Stats().IO()
	}
	if e.pagedEP != nil {
		total += e.pagedEP.Stats().IO()
	}
	if e.hubStore != nil {
		total += e.hubStore.Stats().IO()
	}
	return total
}

// coldStart empties every buffer so a workload starts cold, as a fresh
// workload in the paper would.
func (e *env) coldStart() error {
	if err := e.store.Buffer().Invalidate(); err != nil {
		return err
	}
	if e.mat != nil {
		if err := e.mat.Buffer().Invalidate(); err != nil {
			return err
		}
	}
	if e.pagedEP != nil {
		if err := e.pagedEP.Buffer().Invalidate(); err != nil {
			return err
		}
	}
	if e.hubStore != nil {
		if err := e.hubStore.Buffer().Invalidate(); err != nil {
			return err
		}
	}
	return nil
}

// close detaches every paged component's buffer tenant, releasing the
// frames the experiment setting pinned. It returns the first error and
// keeps going; close is idempotent.
func (e *env) close() error {
	var first error
	if e.hubStore != nil {
		if err := e.hubStore.Close(); first == nil {
			first = err
		}
		e.hubStore = nil
	}
	if e.mat != nil {
		if err := e.mat.Close(); first == nil {
			first = err
		}
		e.mat = nil
	}
	if e.pagedEP != nil {
		if err := e.pagedEP.Close(); first == nil {
			first = err
		}
		e.pagedEP = nil
	}
	if e.store != nil {
		if err := e.store.Close(); first == nil {
			first = err
		}
		e.store = nil
	}
	return first
}

// runWorkload measures fn (one query) over a workload, returning the
// per-query averages. The buffer stays warm within the workload, matching
// the paper's setup of averaging 50 queries against one LRU buffer.
func (e *env) runWorkload(n int, fn func(i int) (*core.Result, error)) (Measure, error) {
	return e.runWorkloadOpt(n, false, fn)
}

// runWorkloadOpt optionally cold-starts the buffers before every query —
// used by the DBLP experiments, whose graph is small enough to fit the
// buffer entirely (see EXPERIMENTS.md).
func (e *env) runWorkloadOpt(n int, coldPerQuery bool, fn func(i int) (*core.Result, error)) (Measure, error) {
	if err := e.coldStart(); err != nil {
		return Measure{}, err
	}
	var m Measure
	for i := 0; i < n; i++ {
		if coldPerQuery {
			if err := e.coldStart(); err != nil {
				return Measure{}, err
			}
		}
		ioBefore := e.io()
		t0 := time.Now()
		res, err := fn(i)
		if err != nil {
			return Measure{}, fmt.Errorf("query %d: %w", i, err)
		}
		m.CPU += time.Since(t0).Seconds()
		m.IO += float64(e.io() - ioBefore)
		m.Results += float64(len(res.Points))
	}
	m.CPU /= float64(n)
	m.IO /= float64(n)
	m.Results /= float64(n)
	return m, nil
}

// newMemPageFile returns an empty in-memory page file at the default page
// size.
func newMemPageFile() *storage.MemFile {
	return storage.NewMemFile(storage.DefaultPageSize)
}

// newRng returns a deterministic RNG for workload construction.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
