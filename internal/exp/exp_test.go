package exp

import (
	"strings"
	"testing"
)

// tinyScale keeps harness tests fast: few queries, quick sizes.
func tinyScale() Scale { return Scale{Queries: 3, Seed: 99} }

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registered %d experiments, want 16 (2 tables + 10 figures + hub substrate + budget + planner + shard)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if e.Run == nil || e.Paper == "" {
			t.Fatalf("experiment %q incomplete", e.Name)
		}
	}
	if _, ok := Find("fig17"); !ok {
		t.Fatal("Find(fig17) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find(nope) succeeded")
	}
}

func TestMeasureTotalAppliesCostModel(t *testing.T) {
	m := Measure{IO: 100, CPU: 0.5}
	if got := m.Total(); got != 0.5+100*IOCostSeconds {
		t.Fatalf("Total = %v", got)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID: "Fig X", Title: "demo", XLabel: "density",
		Xs:      []string{"0.01", "0.02"},
		Columns: []Algo{AlgoEager, AlgoLazy},
		Cells: [][]Measure{
			{{IO: 10, CPU: 0.1}, {IO: 20, CPU: 0.05}},
			{{IO: 5, CPU: 0.2}, {IO: 9, CPU: 0.01}},
		},
	}
	out := tab.Format()
	for _, want := range []string{"Fig X", "density", "0.02", "E (", "L ("} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
	if s := tab.Series(AlgoLazy); len(s) != 2 || s[0] != 20*IOCostSeconds+0.05 {
		t.Fatalf("Series = %v", s)
	}
	if s := tab.IOSeries(AlgoEager); s[1] != 5 {
		t.Fatalf("IOSeries = %v", s)
	}
	if s := tab.CPUSeries(AlgoEager); s[1] != 0.2 {
		t.Fatalf("CPUSeries = %v", s)
	}
	if tab.Series(Algo("zz")) != nil {
		t.Fatal("unknown column returned a series")
	}
}

// TestTableFormatGolden pins the exact rendered bytes: table rows render
// in the slice order the experiment fixed, never in map-iteration order,
// so the same Table must always produce the same output.
func TestTableFormatGolden(t *testing.T) {
	tab := &Table{
		ID: "Fig X", Title: "demo", XLabel: "density",
		Xs:      []string{"0.01", "0.02"},
		Columns: []Algo{AlgoEager, AlgoLazy},
		Cells: [][]Measure{
			{{IO: 10, CPU: 0.1}, {IO: 20, CPU: 0.05}},
			{{IO: 5, CPU: 0.2}, {IO: 9, CPU: 0.01}},
		},
		Notes: []string{"note line"},
	}
	want := "Fig X — demo\n" +
		"density      |  E (IO / CPUs / total) |  L (IO / CPUs / total)\n" +
		"--------------------------------------------------------------\n" +
		"0.01         |    10.0  0.100    0.20 |    20.0  0.050    0.25\n" +
		"0.02         |     5.0  0.200    0.25 |     9.0  0.010    0.10\n" +
		"  note line\n"
	if got := tab.Format(); got != want {
		t.Fatalf("Format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTable1Smoke runs the DBLP ad-hoc experiment end to end at reduced
// query count (the graph itself is paper-scale, it is small).
func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke tests skipped in -short")
	}
	tab, err := Table1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Xs) != 3 || len(tab.Cells) != 3 {
		t.Fatalf("Table1 rows = %d, want 3 predicates", len(tab.Xs))
	}
	for i, row := range tab.Cells {
		for j, m := range row {
			if m.IO == 0 {
				t.Fatalf("row %d col %d has zero I/O (cold queries must fault)", i, j)
			}
		}
	}
}

// experiments that are cheap enough to smoke-test at tiny scale by
// shrinking through their quick defaults.
func TestHarnessSmokeSmallExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke tests skipped in -short")
	}
	// A bespoke small BRITE run via the internal env helpers.
	e, err := briteEnv(5, 2000, 0.02, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.buildHubLabel(2); err != nil {
		t.Fatal(err)
	}
	queries := e.nodePts.Points()[:4]
	row, err := e.restrictedRow(queries, 2, AllSubstrates, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 5 {
		t.Fatalf("row has %d entries", len(row))
	}
	// Results must agree across algorithms (same workload, same k) — the
	// hub-label column included.
	for i := 1; i < len(row); i++ {
		if row[i].Results != row[0].Results {
			t.Fatalf("algorithms disagree on result counts: %v", row)
		}
	}
	// SF-like unrestricted row.
	se, err := sfEnv(6, 2500, 0.02, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	squeries := se.edgePts.Points()[:4]
	srow, err := se.unrestrictedRow(squeries, 1, AllAlgos)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(srow); i++ {
		if srow[i].Results != srow[0].Results {
			t.Fatalf("unrestricted algorithms disagree: %v", srow)
		}
	}
	// Updates on the same env.
	rng := newRng(7)
	urow, err := se.updateRow(rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(urow) != 2 {
		t.Fatalf("updateRow returned %d measures", len(urow))
	}
	if urow[0].IO == 0 && urow[1].IO == 0 {
		t.Fatal("updates performed no I/O")
	}
}
