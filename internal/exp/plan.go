package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"graphrnn"
)

// AlgoAuto is the planner column of the Planner experiment: no algorithm
// named, the substrate auto-selected per attachment state.
const AlgoAuto Algo = "AUTO"

// Planner measures the unified query API's auto-selection against the
// constant eager baseline through the public Run surface, beyond the
// paper: one road-like restricted workload queried at three attachment
// states — no substrate (expansion heuristic), an attached
// materialization (eager-M), an attached hub-label index. The AUTO column
// should track the best substrate available at each state with no change
// to the issued Query; the row label names what the planner resolved to.
func Planner(s Scale) (*Table, error) {
	n := s.pick(20000, 175000)
	t := &Table{
		ID:      "Planner",
		Title:   fmt.Sprintf("planner auto-selection vs eager, road-like restricted |V|=%d, D=0.01, k=2", n),
		XLabel:  "attached substrate",
		Columns: []Algo{AlgoAuto, AlgoEager},
	}
	g, err := graphrnn.GenerateRoadNetwork(s.seed(), n)
	if err != nil {
		return nil, err
	}
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true, BufferPages: s.bufferPages()})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.seed() + 47))
	ps, err := db.PlaceRandomNodePoints(s.seed()+48, max(2, int(0.01*float64(g.NumNodes()))))
	if err != nil {
		return nil, err
	}
	pts := ps.Points()
	queries := make([]graphrnn.PointID, s.queries())
	for i := range queries {
		queries[i] = pts[rng.Intn(len(pts))]
	}

	row := func(label string) error {
		cells := make([]Measure, 0, 2)
		for _, algo := range []graphrnn.Algorithm{graphrnn.Auto(), graphrnn.Eager()} {
			if err := db.DropCache(); err != nil {
				return err
			}
			var m Measure
			var planned graphrnn.Algorithm
			for _, qp := range queries {
				qnode, ok := ps.NodeOf(qp)
				if !ok {
					continue // not in this environment's point set
				}
				before := db.PoolStats().Reads
				t0 := time.Now()
				res, err := db.Run(context.Background(), graphrnn.Query{
					Kind:      graphrnn.KindRNN,
					Target:    graphrnn.NodeLocation(qnode),
					K:         2,
					Points:    ps.Excluding(qp),
					Algorithm: algo,
				})
				if err != nil {
					return err
				}
				m.CPU += time.Since(t0).Seconds()
				m.IO += float64(db.PoolStats().Reads - before)
				m.Results += float64(len(res.Points))
				planned = res.Plan.Algorithm
			}
			nq := float64(len(queries))
			m.CPU /= nq
			m.IO /= nq
			m.Results /= nq
			cells = append(cells, m)
			if algo == graphrnn.Auto() {
				label = fmt.Sprintf("%s (auto>%s)", label, planned)
			}
		}
		t.Xs = append(t.Xs, label)
		t.Cells = append(t.Cells, cells)
		return nil
	}

	if err := row("none"); err != nil {
		return nil, err
	}
	mat, err := db.MaterializeNodePoints(ps, 2, nil)
	if err != nil {
		return nil, err
	}
	if err := row("mat"); err != nil {
		return nil, err
	}
	idx, err := db.BuildHubLabelIndex(ps, 2, &graphrnn.HubLabelOptions{DiskBacked: true})
	if err != nil {
		return nil, err
	}
	if err := row("hub"); err != nil {
		return nil, err
	}
	_, _ = mat, idx
	return t, nil
}
