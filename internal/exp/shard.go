package exp

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"graphrnn"
)

// shardCols are the two columns of the sharding experiment: the
// scatter-gather coordinator and the unsharded engine it must match.
var shardCols = []Algo{"sharded", "global"}

// ShardedServing measures the scatter-gather coordinator against the
// unsharded engine through the public Run surface, beyond the paper: one
// road-like restricted workload (D=0.01, k=2) re-queried at increasing
// shard counts. Per-shard hub labels answer the shard-local sweeps, the
// coordinator re-verifies every merged candidate, so the sharded column
// pays fan-out plus verification on top of smaller per-shard searches; the
// row label reports the measured fan-out and the partition's cut size. The
// experiment is self-checking: any row where the merged answer differs
// from the global engine's fails instead of reporting numbers.
func ShardedServing(s Scale) (*Table, error) {
	n := s.pick(20000, 175000)
	counts := []int{1, 2, 4, 8}
	t := &Table{
		ID:      "Shard",
		Title:   fmt.Sprintf("sharded scatter-gather vs unsharded engine, road-like restricted |V|=%d, D=0.01, k=2", n),
		XLabel:  "shards",
		Columns: shardCols,
	}
	g, err := graphrnn.GenerateRoadNetwork(s.seed(), n)
	if err != nil {
		return nil, err
	}
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true, BufferPages: s.bufferPages()})
	if err != nil {
		return nil, err
	}
	ps, err := db.PlaceRandomNodePoints(s.seed()+51, max(2, int(0.01*float64(g.NumNodes()))))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.seed() + 52))
	pts := ps.Points()
	queries := make([]graphrnn.PointID, s.queries())
	for i := range queries {
		queries[i] = pts[rng.Intn(len(pts))]
	}

	for _, c := range counts {
		sh, err := db.Shard(ps, &graphrnn.ShardOptions{Shards: c, Seed: s.seed(), HubLabelK: 2})
		if err != nil {
			return nil, err
		}
		var sm, gm Measure
		for _, qp := range queries {
			qnode, ok := ps.NodeOf(qp)
			if !ok {
				continue // not in this environment's point set
			}
			q := graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 2}
			before := db.PoolStats().Reads
			t0 := time.Now()
			sres, err := sh.Run(context.Background(), q)
			if err != nil {
				sh.Close()
				return nil, err
			}
			sm.CPU += time.Since(t0).Seconds()
			sm.IO += float64(db.PoolStats().Reads - before)
			sm.Results += float64(len(sres.Points))

			gq := q
			gq.Points = ps
			before = db.PoolStats().Reads
			t0 = time.Now()
			gres, err := db.Run(context.Background(), gq)
			if err != nil {
				sh.Close()
				return nil, err
			}
			gm.CPU += time.Since(t0).Seconds()
			gm.IO += float64(db.PoolStats().Reads - before)
			gm.Results += float64(len(gres.Points))

			if !reflect.DeepEqual(sres.Points, gres.Points) {
				sh.Close()
				return nil, fmt.Errorf("exp: %d shards disagree with the global engine at point %d: sharded %v, global %v",
					c, qp, sres.Points, gres.Points)
			}
		}
		nq := float64(len(queries))
		sm.CPU /= nq
		sm.IO /= nq
		sm.Results /= nq
		gm.CPU /= nq
		gm.IO /= nq
		gm.Results /= nq
		st := sh.Stats()
		if err := sh.Close(); err != nil {
			return nil, err
		}
		t.Xs = append(t.Xs, fmt.Sprintf("%d (fan %.1f, cut %d)", c, float64(st.FanOuts)/float64(st.Queries), st.CutEdges))
		t.Cells = append(t.Cells, []Measure{sm, gm})
	}
	return t, nil
}
