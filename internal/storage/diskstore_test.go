package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
)

func randomGraph(t *testing.T, rng *rand.Rand, n, extraEdges int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	// Spanning chain keeps it connected.
	for i := 1; i < n; i++ {
		if err := b.AddEdge(graph.NodeID(i-1), graph.NodeID(i), 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extraEdges; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v, 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assertSameAdjacency(t *testing.T, g *graph.Graph, s graph.Access) {
	t.Helper()
	var a, b []graph.Edge
	var err error
	for n := graph.NodeID(0); int(n) < g.NumNodes(); n++ {
		a, err = g.Adjacency(n, a[:0])
		if err != nil {
			t.Fatal(err)
		}
		bCopy := make([]graph.Edge, 0, len(a))
		b, err = s.Adjacency(n, b[:0])
		if err != nil {
			t.Fatalf("disk adjacency of %d: %v", n, err)
		}
		bCopy = append(bCopy, b...)
		if len(a) != len(bCopy) {
			t.Fatalf("node %d: degree %d on disk, want %d", n, len(bCopy), len(a))
		}
		for i := range a {
			if a[i] != bCopy[i] {
				t.Fatalf("node %d edge %d: disk %+v, want %+v", n, i, bCopy[i], a[i])
			}
		}
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(t, rng, 300, 900)
	file := NewMemFile(512) // small pages force multi-page layouts
	s, err := BuildDiskStore(g, file, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAdjacency(t, g, s)
	if s.NumPages() == 0 {
		t.Fatal("no pages written")
	}
}

func TestDiskStoreHighDegreeOverflow(t *testing.T) {
	// A star graph: the hub's adjacency list cannot fit one small page and
	// must be chained across fragments.
	const n = 600
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(0, graph.NodeID(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	file := NewMemFile(256)
	if MaxEdgesPerFragment(256) >= n-1 {
		t.Fatal("test setup: page too large to force fragmentation")
	}
	s, err := BuildDiskStore(g, file, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAdjacency(t, g, s)
}

func TestDiskStoreOSFileBacked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(t, rng, 120, 240)
	file, err := CreateOSFile(t.TempDir()+"/g.pages", 512)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	s, err := BuildDiskStore(g, file, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAdjacency(t, g, s)
}

func TestDiskStoreIOAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(t, rng, 400, 800)
	file := NewMemFile(DefaultPageSize)
	s, err := BuildDiskStore(g, file, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	var buf []graph.Edge
	for n := graph.NodeID(0); int(n) < g.NumNodes(); n++ {
		if buf, err = s.Adjacency(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	first := s.Stats()
	if first.Reads == 0 {
		t.Fatal("no faults recorded on a cold scan")
	}
	if first.Reads > int64(s.NumPages()) {
		t.Fatalf("cold scan faulted %d times for %d pages", first.Reads, s.NumPages())
	}
	// Warm scan: everything fits in 256 pages, so no new faults.
	for n := graph.NodeID(0); int(n) < g.NumNodes(); n++ {
		if buf, err = s.Adjacency(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	second := s.Stats().Sub(first)
	if second.Reads != 0 {
		t.Fatalf("warm scan faulted %d times", second.Reads)
	}
}

func TestDiskStoreBFSLocality(t *testing.T) {
	// On a path graph, BFS order packs consecutive nodes into the same
	// page, so a walk along the path must fault far fewer times than it
	// reads adjacency lists.
	const n = 2000
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(graph.NodeID(i-1), graph.NodeID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	file := NewMemFile(DefaultPageSize)
	s, err := BuildDiskStore(g, file, 1, nil) // single-frame buffer
	if err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	var buf []graph.Edge
	for i := 0; i < n; i++ {
		if buf, err = s.Adjacency(graph.NodeID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Reads > int64(s.NumPages()+1) {
		t.Fatalf("sequential walk faulted %d times over %d pages: layout has no locality", st.Reads, s.NumPages())
	}
}

func TestBuildDiskStoreRejectsNonEmptyFile(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(4)), 10, 5)
	file := NewMemFile(256)
	if _, err := file.Append(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDiskStore(g, file, 4, nil); err == nil {
		t.Fatal("BuildDiskStore accepted a non-empty file")
	}
}

func TestDiskStoreAdjacencyOutOfRange(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(5)), 10, 5)
	s, err := BuildDiskStore(g, NewMemFile(256), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Adjacency(-1, nil); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := s.Adjacency(10, nil); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// failingFile injects read errors to exercise error propagation.
type failingFile struct {
	*MemFile
	failAfter int
	reads     int
}

func (f *failingFile) Read(id PageID, dst []byte) error {
	f.reads++
	if f.reads > f.failAfter {
		return fmt.Errorf("injected fault on page %d", id)
	}
	return f.MemFile.Read(id, dst)
}

func TestDiskStoreReadErrorPropagates(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(6)), 200, 400)
	mem := NewMemFile(512)
	// Build against the healthy file first.
	if _, err := BuildDiskStore(g, mem, 0, nil); err != nil {
		t.Fatal(err)
	}
	ff := &failingFile{MemFile: mem, failAfter: 3}
	s := newDiskStore(NewBufferManager(ff, 0), nil, g.NumNodes())
	// Rebuild the index by copying from a clean store.
	clean, err := BuildDiskStore(g, NewMemFile(512), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.index = clean.index
	var sawErr bool
	var buf []graph.Edge
	for n := graph.NodeID(0); int(n) < g.NumNodes(); n++ {
		if buf, err = s.Adjacency(n, buf); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("injected read fault was swallowed")
	}
}

func TestFragmentCodecCorruptSlot(t *testing.T) {
	pb := NewPageBuilder(256)
	if _, err := pb.AddFragment(1, []graph.Edge{{To: 2, W: 3}}, InvalidRecRef); err != nil {
		t.Fatal(err)
	}
	page := pb.Bytes()
	if _, _, _, err := ReadFragment(page, 256, 5, nil); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	var oor *MemFile
	_ = oor
	if !errors.Is(ErrPageOutOfRange, ErrPageOutOfRange) {
		t.Fatal("sentinel identity broken")
	}
}

func TestPageBuilderCapacity(t *testing.T) {
	pb := NewPageBuilder(256)
	capEdges := pb.FragmentCapacity()
	if capEdges != MaxEdgesPerFragment(256) {
		t.Fatalf("empty-page capacity %d != MaxEdgesPerFragment %d", capEdges, MaxEdgesPerFragment(256))
	}
	edges := make([]graph.Edge, capEdges)
	for i := range edges {
		edges[i] = graph.Edge{To: graph.NodeID(i), W: float64(i)}
	}
	if _, err := pb.AddFragment(9, edges, InvalidRecRef); err != nil {
		t.Fatalf("full-capacity fragment rejected: %v", err)
	}
	if _, err := pb.AddFragment(10, []graph.Edge{{To: 1, W: 1}}, InvalidRecRef); err == nil {
		t.Fatal("overfull page accepted a fragment")
	}
	// Round-trip.
	node, next, got, err := ReadFragment(pb.Bytes(), 256, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if node != 9 || next != InvalidRecRef || len(got) != capEdges {
		t.Fatalf("decoded node=%d next=%+v len=%d", node, next, len(got))
	}
	for i, e := range got {
		if e != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, e, edges[i])
		}
	}
}
