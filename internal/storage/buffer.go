package storage

import (
	"container/list"
	"fmt"
)

// BufferManager caches pages of a PagedFile with LRU replacement and counts
// physical I/O. The paper's experiments run with a 1 MB buffer (256 pages of
// 4 KB) by default and sweep the capacity in Fig 21; a capacity of zero
// means every logical access performs (and counts) a physical transfer.
//
// Pages are cached whole; Get returns the cached bytes, which the caller
// must treat as read-only. Update applies a mutation in place and marks the
// page dirty; dirty pages are written back on eviction or Flush.
type BufferManager struct {
	file     PagedFile
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used
	stats    Stats

	// scratch page used for capacity-0 updates
	scratch []byte
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	elem  *list.Element
}

// NewBufferManager wraps file with an LRU cache of capPages pages.
func NewBufferManager(file PagedFile, capPages int) *BufferManager {
	if capPages < 0 {
		capPages = 0
	}
	return &BufferManager{
		file:     file,
		capacity: capPages,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
		scratch:  make([]byte, file.PageSize()),
	}
}

// File returns the underlying paged file.
func (b *BufferManager) File() PagedFile { return b.file }

// Capacity returns the buffer capacity in pages.
func (b *BufferManager) Capacity() int { return b.capacity }

// Stats returns a copy of the accumulated I/O counters.
func (b *BufferManager) Stats() Stats { return b.stats }

// ResetStats zeroes the I/O counters.
func (b *BufferManager) ResetStats() { b.stats = Stats{} }

// Get returns the contents of page id. The returned slice aliases the
// buffer frame (or an internal scratch page when capacity is zero) and is
// valid until the next call on this BufferManager; callers must not modify
// it.
func (b *BufferManager) Get(id PageID) ([]byte, error) {
	if fr, ok := b.frames[id]; ok {
		b.stats.Hits++
		b.lru.MoveToFront(fr.elem)
		return fr.data, nil
	}
	b.stats.Reads++
	if b.capacity == 0 {
		if err := b.file.Read(id, b.scratch); err != nil {
			return nil, err
		}
		return b.scratch, nil
	}
	fr, err := b.admit(id)
	if err != nil {
		return nil, err
	}
	return fr.data, nil
}

// Update fetches page id, applies fn to its contents in place, and marks the
// page dirty. With a zero-capacity buffer the page is written through
// immediately.
func (b *BufferManager) Update(id PageID, fn func(page []byte) error) error {
	if fr, ok := b.frames[id]; ok {
		b.stats.Hits++
		b.lru.MoveToFront(fr.elem)
		if err := fn(fr.data); err != nil {
			return err
		}
		fr.dirty = true
		return nil
	}
	b.stats.Reads++
	if b.capacity == 0 {
		if err := b.file.Read(id, b.scratch); err != nil {
			return err
		}
		if err := fn(b.scratch); err != nil {
			return err
		}
		b.stats.Writes++
		return b.file.Write(id, b.scratch)
	}
	fr, err := b.admit(id)
	if err != nil {
		return err
	}
	if err := fn(fr.data); err != nil {
		return err
	}
	fr.dirty = true
	return nil
}

// Append allocates a new page in the underlying file (counted as one write)
// and admits it to the buffer.
func (b *BufferManager) Append(src []byte) (PageID, error) {
	b.stats.Writes++
	id, err := b.file.Append(src)
	if err != nil {
		return InvalidPage, err
	}
	if b.capacity > 0 {
		if err := b.evictIfFull(); err != nil {
			return InvalidPage, err
		}
		fr := &frame{id: id, data: make([]byte, b.file.PageSize())}
		copy(fr.data, src)
		fr.elem = b.lru.PushFront(fr)
		b.frames[id] = fr
	}
	return id, nil
}

// Flush writes every dirty page back to the file and retains the cache.
func (b *BufferManager) Flush() error {
	for _, fr := range b.frames {
		if fr.dirty {
			b.stats.Writes++
			if err := b.file.Write(fr.id, fr.data); err != nil {
				return fmt.Errorf("storage: flush page %d: %w", fr.id, err)
			}
			fr.dirty = false
		}
	}
	return nil
}

// Invalidate drops every cached frame (writing back dirty ones), so that a
// fresh workload starts from a cold buffer.
func (b *BufferManager) Invalidate() error {
	if err := b.Flush(); err != nil {
		return err
	}
	b.frames = make(map[PageID]*frame)
	b.lru.Init()
	return nil
}

func (b *BufferManager) admit(id PageID) (*frame, error) {
	if err := b.evictIfFull(); err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: make([]byte, b.file.PageSize())}
	if err := b.file.Read(id, fr.data); err != nil {
		return nil, err
	}
	fr.elem = b.lru.PushFront(fr)
	b.frames[id] = fr
	return fr, nil
}

func (b *BufferManager) evictIfFull() error {
	for len(b.frames) >= b.capacity {
		tail := b.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*frame)
		if victim.dirty {
			b.stats.Writes++
			if err := b.file.Write(victim.id, victim.data); err != nil {
				return fmt.Errorf("storage: evict page %d: %w", victim.id, err)
			}
		}
		b.lru.Remove(tail)
		delete(b.frames, victim.id)
	}
	return nil
}
