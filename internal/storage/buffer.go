package storage

// BufferManager is the single-file view of a page cache: the historical
// name for what is now a BufferPool tenant. Substrates that serve exactly
// one paged file keep using this surface; substrates sharing a pool attach
// their files to one BufferPool and receive the same type.
type BufferManager = Tenant

// NewBufferManager wraps file with a private LRU cache of capPages pages —
// a BufferPool with a single tenant. A capacity of zero means every
// logical access performs (and counts) a physical transfer.
func NewBufferManager(file PagedFile, capPages int) *BufferManager {
	return NewBufferPool(capPages).Attach("", file, 0)
}
