package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferManager caches pages of a PagedFile with LRU replacement and counts
// physical I/O. The paper's experiments run with a 1 MB buffer (256 pages of
// 4 KB) by default and sweep the capacity in Fig 21; a capacity of zero
// means every logical access performs (and counts) a physical transfer.
//
// Pages are cached whole; Get returns the cached bytes, which the caller
// must treat as read-only. Update applies a mutation in place and marks the
// page dirty; dirty pages are written back on eviction or Flush.
//
// A BufferManager is safe for concurrent use: a mutex guards the frame
// table and the I/O counters are atomic, so Stats and ResetStats never
// block behind an in-flight page fault. A Get that faults releases the
// mutex for the duration of the physical read — concurrent Gets of cached
// pages proceed, and concurrent Gets of the *same* missing page coalesce
// into one physical read (the waiters block on the frame's ready latch and
// count as buffer hits). Frame contents are immutable except through
// Update, so concurrent readers may hold slices returned by Get; callers
// that Update pages while readers are active must coordinate externally
// (queries never Update — only materialization maintenance does, and it
// requires exclusive access to its Materialized).
type BufferManager struct {
	file     PagedFile
	capacity int
	stats    atomicStats

	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // front = most recently used

	// scratch page used for capacity-0 updates; guarded by mu.
	scratch []byte
}

// atomicStats is the lock-free representation of Stats, so that I/O
// counters can be read and reset while queries fault pages in.
type atomicStats struct {
	reads  atomic.Int64
	hits   atomic.Int64
	writes atomic.Int64
}

func (a *atomicStats) snapshot() Stats {
	return Stats{Reads: a.reads.Load(), Hits: a.hits.Load(), Writes: a.writes.Load()}
}

func (a *atomicStats) reset() {
	a.reads.Store(0)
	a.hits.Store(0)
	a.writes.Store(0)
}

// frame is one buffered page. ready is closed once data holds the page
// contents (or err the read failure); a frame created from data already in
// hand (Append, Update's synchronous admission) is born ready.
type frame struct {
	id    PageID
	data  []byte
	dirty bool
	elem  *list.Element
	ready chan struct{}
	err   error
}

// loaded reports whether the frame's physical read has completed. Pending
// frames must not be evicted or written back.
func (fr *frame) loaded() bool {
	select {
	case <-fr.ready:
		return true
	default:
		return false
	}
}

func newReadyChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// NewBufferManager wraps file with an LRU cache of capPages pages.
func NewBufferManager(file PagedFile, capPages int) *BufferManager {
	if capPages < 0 {
		capPages = 0
	}
	return &BufferManager{
		file:     file,
		capacity: capPages,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
		scratch:  make([]byte, file.PageSize()),
	}
}

// File returns the underlying paged file.
func (b *BufferManager) File() PagedFile { return b.file }

// Capacity returns the buffer capacity in pages.
func (b *BufferManager) Capacity() int { return b.capacity }

// Stats returns a copy of the accumulated I/O counters. It is safe to call
// while other goroutines access the buffer.
func (b *BufferManager) Stats() Stats { return b.stats.snapshot() }

// ResetStats zeroes the I/O counters. It is safe to call while other
// goroutines access the buffer.
func (b *BufferManager) ResetStats() { b.stats.reset() }

// Get returns the contents of page id. The returned slice aliases the
// buffer frame (or a private copy when capacity is zero) and must be
// treated as read-only; it stays valid until the page is mutated through
// Update.
func (b *BufferManager) Get(id PageID) ([]byte, error) {
	return b.GetInto(id, nil)
}

// GetInto is Get with a caller-provided page buffer for the zero-capacity
// case: when no frame will cache the page, its contents are read into buf
// (grown if needed) instead of a fresh allocation, so hot read paths stay
// allocation-free. The returned slice is either a cached frame (read-only,
// valid until the page is mutated through Update) or buf.
func (b *BufferManager) GetInto(id PageID, buf []byte) ([]byte, error) {
	b.mu.Lock()
	if fr, ok := b.frames[id]; ok {
		b.lru.MoveToFront(fr.elem)
		b.mu.Unlock()
		<-fr.ready // no-op when loaded; else wait for the in-flight read
		if fr.err != nil {
			return nil, fr.err
		}
		b.stats.hits.Add(1)
		return fr.data, nil
	}
	b.stats.reads.Add(1)
	if b.capacity == 0 {
		// No frame will hold this page; read into the caller's buffer so
		// that concurrent zero-capacity readers do not share a scratch
		// page.
		b.mu.Unlock()
		if len(buf) < b.file.PageSize() {
			buf = make([]byte, b.file.PageSize())
		}
		if err := b.file.Read(id, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	// Admit a pending frame, then perform the physical read without
	// holding the mutex; concurrent requests for the same page find the
	// pending frame above and wait on its latch.
	if err := b.evictIfFull(); err != nil {
		b.mu.Unlock()
		return nil, err
	}
	fr := &frame{id: id, data: make([]byte, b.file.PageSize()), ready: make(chan struct{})}
	fr.elem = b.lru.PushFront(fr)
	b.frames[id] = fr
	b.mu.Unlock()

	fr.err = b.file.Read(id, fr.data)
	if fr.err != nil {
		// Drop the failed frame so a later Get retries the read.
		b.mu.Lock()
		if cur, ok := b.frames[id]; ok && cur == fr {
			b.lru.Remove(fr.elem)
			delete(b.frames, id)
		}
		b.mu.Unlock()
	}
	close(fr.ready)
	if fr.err != nil {
		return nil, fr.err
	}
	return fr.data, nil
}

// Update fetches page id, applies fn to its contents in place, and marks the
// page dirty. With a zero-capacity buffer the page is written through
// immediately. Update must not run concurrently with readers of the same
// page (see the type comment); a miss is admitted synchronously under the
// lock, which is fine for the rare maintenance paths that use it.
func (b *BufferManager) Update(id PageID, fn func(page []byte) error) error {
	for {
		b.mu.Lock()
		fr, ok := b.frames[id]
		if !ok {
			break
		}
		if fr.loaded() {
			b.stats.hits.Add(1)
			b.lru.MoveToFront(fr.elem)
			defer b.mu.Unlock()
			if err := fn(fr.data); err != nil {
				return err
			}
			fr.dirty = true
			return nil
		}
		// A concurrent Get is still reading this page in; wait for it and
		// re-check (the frame is dropped again on read failure).
		b.mu.Unlock()
		<-fr.ready
	}
	defer b.mu.Unlock()
	b.stats.reads.Add(1)
	if b.capacity == 0 {
		if err := b.file.Read(id, b.scratch); err != nil {
			return err
		}
		if err := fn(b.scratch); err != nil {
			return err
		}
		b.stats.writes.Add(1)
		return b.file.Write(id, b.scratch)
	}
	if err := b.evictIfFull(); err != nil {
		return err
	}
	fr := &frame{id: id, data: make([]byte, b.file.PageSize()), ready: newReadyChan()}
	if err := b.file.Read(id, fr.data); err != nil {
		return err
	}
	fr.elem = b.lru.PushFront(fr)
	b.frames[id] = fr
	if err := fn(fr.data); err != nil {
		return err
	}
	fr.dirty = true
	return nil
}

// Append allocates a new page in the underlying file (counted as one write)
// and admits it to the buffer.
func (b *BufferManager) Append(src []byte) (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.writes.Add(1)
	id, err := b.file.Append(src)
	if err != nil {
		return InvalidPage, err
	}
	if b.capacity > 0 {
		if err := b.evictIfFull(); err != nil {
			return InvalidPage, err
		}
		fr := &frame{id: id, data: make([]byte, b.file.PageSize()), ready: newReadyChan()}
		copy(fr.data, src)
		fr.elem = b.lru.PushFront(fr)
		b.frames[id] = fr
	}
	return id, nil
}

// Flush writes every dirty page back to the file and retains the cache.
func (b *BufferManager) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

func (b *BufferManager) flushLocked() error {
	for _, fr := range b.frames {
		if fr.dirty {
			b.stats.writes.Add(1)
			if err := b.file.Write(fr.id, fr.data); err != nil {
				return fmt.Errorf("storage: flush page %d: %w", fr.id, err)
			}
			fr.dirty = false
		}
	}
	return nil
}

// Invalidate drops every cached frame (writing back dirty ones), so that a
// fresh workload starts from a cold buffer. Frames with reads still in
// flight are retained.
func (b *BufferManager) Invalidate() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.flushLocked(); err != nil {
		return err
	}
	for id, fr := range b.frames {
		if fr.loaded() {
			b.lru.Remove(fr.elem)
			delete(b.frames, id)
		}
	}
	return nil
}

// evictIfFull is called with b.mu held. Frames whose physical read is still
// in flight are skipped; if every frame is pending the buffer temporarily
// exceeds its capacity (bounded by the number of concurrent faulters).
func (b *BufferManager) evictIfFull() error {
	elem := b.lru.Back()
	for len(b.frames) >= b.capacity && elem != nil {
		victim := elem.Value.(*frame)
		prev := elem.Prev()
		if !victim.loaded() {
			elem = prev
			continue
		}
		if victim.dirty {
			b.stats.writes.Add(1)
			if err := b.file.Write(victim.id, victim.data); err != nil {
				return fmt.Errorf("storage: evict page %d: %w", victim.id, err)
			}
		}
		b.lru.Remove(elem)
		delete(b.frames, victim.id)
		elem = prev
	}
	return nil
}
