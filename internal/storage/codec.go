package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"graphrnn/internal/graph"
)

// Adjacency lists are stored in slotted pages. Each page is
//
//	[0:2]   uint16 record count
//	[2:..]  records, growing upward
//	[..:N]  slot directory growing downward: slot i's record offset is the
//	        uint16 at N-2(i+1)
//
// A record is one *fragment* of a node's adjacency list:
//
//	node     int32    owner node id
//	count    uint16   number of edges in this fragment
//	nextPage int32    page of the next fragment, InvalidPage when last
//	nextSlot uint16   slot of the next fragment
//	edges    count × { to int32, weight float64 }
//
// Fragmentation lets arbitrarily high-degree nodes (hubs of scale-free
// BRITE-style topologies) span pages while ordinary nodes share pages with
// their graph neighbours, which is the locality-grouping idea of Section 3.1
// of the paper. Weights are stored as float64 so the disk-resident graph is
// bit-identical to the in-memory one.

const (
	pageHeaderSize = 2
	slotEntrySize  = 2
	fragHeaderSize = 4 + 2 + 4 + 2
	edgeEntrySize  = 4 + 8
)

// RecRef locates a record (fragment) on disk.
type RecRef struct {
	Page PageID
	Slot uint16
}

// InvalidRecRef marks the absence of a record reference.
var InvalidRecRef = RecRef{Page: InvalidPage}

// PageBuilder assembles slotted pages of a fixed size.
type PageBuilder struct {
	pageSize int
	buf      []byte
	used     int // bytes consumed by header + records
	nrec     int
}

// NewPageBuilder returns a builder for pages of pageSize bytes.
func NewPageBuilder(pageSize int) *PageBuilder {
	pb := &PageBuilder{pageSize: pageSize}
	pb.Reset()
	return pb
}

// Reset clears the builder for a fresh page.
func (pb *PageBuilder) Reset() {
	if pb.buf == nil {
		pb.buf = make([]byte, pb.pageSize)
	} else {
		for i := range pb.buf {
			pb.buf[i] = 0
		}
	}
	pb.used = pageHeaderSize
	pb.nrec = 0
}

// Empty reports whether no records have been added to the current page.
func (pb *PageBuilder) Empty() bool { return pb.nrec == 0 }

// NumRecords returns the number of records in the current page.
func (pb *PageBuilder) NumRecords() int { return pb.nrec }

// FreeBytes returns the space available for one more record including its
// slot directory entry.
func (pb *PageBuilder) FreeBytes() int {
	return pb.pageSize - pb.used - slotEntrySize*(pb.nrec+1)
}

// FragmentCapacity returns how many edges a new fragment record could hold
// in the current page.
func (pb *PageBuilder) FragmentCapacity() int {
	free := pb.FreeBytes() - fragHeaderSize
	if free < 0 {
		return -1
	}
	return free / edgeEntrySize
}

// MaxEdgesPerFragment returns the edge capacity of a fragment in an empty
// page of pageSize bytes.
func MaxEdgesPerFragment(pageSize int) int {
	return (pageSize - pageHeaderSize - slotEntrySize - fragHeaderSize) / edgeEntrySize
}

// AddFragment appends a fragment record and returns its slot number. The
// caller must have checked FragmentCapacity.
func (pb *PageBuilder) AddFragment(node graph.NodeID, edges []graph.Edge, next RecRef) (int, error) {
	need := fragHeaderSize + edgeEntrySize*len(edges)
	if need > pb.FreeBytes() {
		return 0, fmt.Errorf("storage: fragment of %d bytes does not fit in %d free", need, pb.FreeBytes())
	}
	if len(edges) > math.MaxUint16 {
		return 0, fmt.Errorf("storage: fragment with %d edges exceeds uint16", len(edges))
	}
	off := pb.used
	b := pb.buf
	binary.LittleEndian.PutUint32(b[off:], uint32(node))
	binary.LittleEndian.PutUint16(b[off+4:], uint16(len(edges)))
	binary.LittleEndian.PutUint32(b[off+6:], uint32(next.Page))
	binary.LittleEndian.PutUint16(b[off+10:], next.Slot)
	p := off + fragHeaderSize
	for _, e := range edges {
		binary.LittleEndian.PutUint32(b[p:], uint32(e.To))
		binary.LittleEndian.PutUint64(b[p+4:], math.Float64bits(e.W))
		p += edgeEntrySize
	}
	slot := pb.nrec
	binary.LittleEndian.PutUint16(b[pb.pageSize-slotEntrySize*(slot+1):], uint16(off))
	pb.used = p
	pb.nrec++
	binary.LittleEndian.PutUint16(b[0:], uint16(pb.nrec))
	return slot, nil
}

// Bytes returns the assembled page. The slice aliases the builder's buffer
// and is invalidated by Reset.
func (pb *PageBuilder) Bytes() []byte { return pb.buf }

// PageRecordCount returns the number of records stored in an encoded page.
func PageRecordCount(page []byte) int {
	return int(binary.LittleEndian.Uint16(page[0:]))
}

// ReadFragment decodes the fragment at slot in page, appending its edges to
// buf. It returns the owner node, the location of the next fragment
// (InvalidRecRef when the chain ends), and the extended edge slice.
func ReadFragment(page []byte, pageSize int, slot int, buf []graph.Edge) (node graph.NodeID, next RecRef, edges []graph.Edge, err error) {
	nrec := PageRecordCount(page)
	if slot < 0 || slot >= nrec {
		return 0, InvalidRecRef, buf, fmt.Errorf("storage: slot %d out of range [0,%d)", slot, nrec)
	}
	off := int(binary.LittleEndian.Uint16(page[pageSize-slotEntrySize*(slot+1):]))
	if off+fragHeaderSize > pageSize {
		return 0, InvalidRecRef, buf, fmt.Errorf("storage: corrupt slot %d offset %d", slot, off)
	}
	node = graph.NodeID(binary.LittleEndian.Uint32(page[off:]))
	count := int(binary.LittleEndian.Uint16(page[off+4:]))
	next = RecRef{
		Page: PageID(int32(binary.LittleEndian.Uint32(page[off+6:]))),
		Slot: binary.LittleEndian.Uint16(page[off+10:]),
	}
	p := off + fragHeaderSize
	if p+count*edgeEntrySize > pageSize {
		return 0, InvalidRecRef, buf, fmt.Errorf("storage: corrupt fragment at slot %d: %d edges overflow page", slot, count)
	}
	for i := 0; i < count; i++ {
		to := graph.NodeID(binary.LittleEndian.Uint32(page[p:]))
		w := math.Float64frombits(binary.LittleEndian.Uint64(page[p+4:]))
		buf = append(buf, graph.Edge{To: to, W: w})
		p += edgeEntrySize
	}
	return node, next, buf, nil
}
