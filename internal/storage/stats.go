// Package storage provides the disk substrate of the library: fixed-size
// pages, paged files (in-memory and OS-file backed), an LRU buffer manager
// with fault accounting, and the slotted-page codec that stores graph
// adjacency lists the way Section 3.1 of Yiu et al. (TKDE'06) describes —
// lists of nearby nodes grouped into the same page, plus an index from node
// id to its list.
//
// The experimental cost model of the paper charges 10 ms per random I/O and
// measures CPU separately; Stats exposes exactly the counters that model
// needs.
package storage

// Stats is a point-in-time snapshot of the physical I/O activity of a
// buffer pool or one of its tenants. The live counters are atomics, so
// snapshots may be taken while queries fault pages in.
type Stats struct {
	// Reads counts physical page reads (buffer faults).
	Reads int64
	// Hits counts logical reads served from the buffer.
	Hits int64
	// Writes counts physical page writes (dirty evictions and flushes).
	Writes int64
	// Evictions counts frames pushed out by LRU replacement (quota or
	// pool-capacity pressure).
	Evictions int64
}

// Add returns the element-wise sum of two Stats.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:     s.Reads + o.Reads,
		Hits:      s.Hits + o.Hits,
		Writes:    s.Writes + o.Writes,
		Evictions: s.Evictions + o.Evictions,
	}
}

// Sub returns the element-wise difference s-o, used to take per-query deltas.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:     s.Reads - o.Reads,
		Hits:      s.Hits - o.Hits,
		Writes:    s.Writes - o.Writes,
		Evictions: s.Evictions - o.Evictions,
	}
}

// HitRate returns the fraction of logical reads served from the buffer,
// or 0 when nothing was read.
func (s Stats) HitRate() float64 {
	if s.Reads+s.Hits == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Reads+s.Hits)
}

// IO returns the total number of physical page transfers.
func (s Stats) IO() int64 { return s.Reads + s.Writes }
