package storage

import (
	"fmt"
	"sync"

	"graphrnn/internal/graph"
)

// DiskStore serves adjacency lists from a paged file through an LRU buffer
// manager, implementing graph.Access. It is the storage architecture of
// Section 3.1: adjacency lists of nearby nodes share pages, and an index
// maps each node id to its list. The index (one RecRef per node) is kept
// memory-resident — the analogue of pinning the directory levels of the
// paper's node-id index — so the counted I/O is adjacency-page I/O, which is
// what the paper's experiments report.
//
// A built DiskStore is read-only and safe for concurrent use: Adjacency
// reads pages through the mutex-guarded BufferManager, and Stats /
// ResetStats use its atomic counters, so they may run while queries are in
// flight.
type DiskStore struct {
	bm       *BufferManager
	index    []RecRef
	numNodes int
	// pages recycles zero-capacity read buffers across Adjacency calls so
	// the NoBuffer measurement mode stays allocation-free per page access.
	pages sync.Pool
}

func newDiskStore(bm *BufferManager, index []RecRef, numNodes int) *DiskStore {
	s := &DiskStore{bm: bm, index: index, numNodes: numNodes}
	s.pages.New = func() any { return make([]byte, bm.File().PageSize()) }
	return s
}

// BuildDiskStore packs g into file following the given node order and
// returns a store reading through a private buffer of bufferPages pages.
// A nil order defaults to BFSOrder(g), the connectivity-clustering layout
// of Chan & Zhang used by the paper. The file must be empty. Use
// BuildDiskStoreBuffer to read adjacency pages through a shared pool.
func BuildDiskStore(g *graph.Graph, file PagedFile, bufferPages int, order []graph.NodeID) (*DiskStore, error) {
	return BuildDiskStoreBuffer(g, file, nil, bufferPages, order)
}

// BuildDiskStoreBuffer is BuildDiskStore reading adjacency pages through
// bm, which must wrap file — typically a tenant of the process-wide
// buffer pool. A nil bm falls back to a private buffer of bufferPages.
func BuildDiskStoreBuffer(g *graph.Graph, file PagedFile, bm *BufferManager, bufferPages int, order []graph.NodeID) (*DiskStore, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("storage: BuildDiskStore needs an empty file, got %d pages", file.NumPages())
	}
	if order == nil {
		order = BFSOrder(g)
	}
	if len(order) != g.NumNodes() {
		return nil, fmt.Errorf("storage: order has %d nodes, graph has %d", len(order), g.NumNodes())
	}
	pageSize := file.PageSize()
	maxFrag := MaxEdgesPerFragment(pageSize)
	if maxFrag < 1 {
		return nil, fmt.Errorf("storage: page size %d cannot hold any edge", pageSize)
	}

	index := make([]RecRef, g.NumNodes())
	for i := range index {
		index[i] = InvalidRecRef
	}
	pb := NewPageBuilder(pageSize)
	nextPageID := PageID(0)
	var adj []graph.Edge

	flush := func() error {
		if pb.Empty() {
			return nil
		}
		id, err := file.Append(pb.Bytes())
		if err != nil {
			return err
		}
		if id != nextPageID {
			return fmt.Errorf("storage: expected page %d, file appended %d", nextPageID, id)
		}
		nextPageID++
		pb.Reset()
		return nil
	}

	// minTailEdges avoids opening a fragment chain just because a page has
	// a sliver of free space left; a fragment is only started in the
	// current page if it fits at least this many edges (or the whole list).
	const minTailEdges = 8

	//lint:ignore vetrnn/execpoll store construction; no query context exists yet
	for _, n := range order {
		var err error
		adj, err = g.Adjacency(n, adj[:0])
		if err != nil {
			return nil, err
		}
		remaining := adj
		first := true
		for first || len(remaining) > 0 {
			capEdges := pb.FragmentCapacity()
			fits := capEdges >= len(remaining)
			if !pb.Empty() && !fits && capEdges < minTailEdges {
				// Not worth splitting here; start on a fresh page.
				if err := flush(); err != nil {
					return nil, err
				}
				capEdges = pb.FragmentCapacity()
				fits = capEdges >= len(remaining)
			}
			var take int
			next := InvalidRecRef
			if fits {
				take = len(remaining)
			} else {
				take = capEdges
				// The remainder continues at slot 0 of the next page.
				next = RecRef{Page: nextPageID + 1, Slot: 0}
			}
			slot, err := pb.AddFragment(n, remaining[:take], next)
			if err != nil {
				return nil, err
			}
			if first {
				index[n] = RecRef{Page: nextPageID, Slot: uint16(slot)}
				first = false
			}
			remaining = remaining[take:]
			if len(remaining) > 0 {
				// Force the continuation onto the announced next page.
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if bm == nil {
		bm = NewBufferManager(file, bufferPages)
	}
	return newDiskStore(bm, index, g.NumNodes()), nil
}

// NumNodes implements graph.Access.
func (s *DiskStore) NumNodes() int { return s.numNodes }

// Adjacency implements graph.Access, following the fragment chain of node n
// and appending its edges to buf.
func (s *DiskStore) Adjacency(n graph.NodeID, buf []graph.Edge) ([]graph.Edge, error) {
	if n < 0 || int(n) >= s.numNodes {
		return nil, fmt.Errorf("storage: node %d out of range [0,%d)", n, s.numNodes)
	}
	buf = buf[:0]
	ref := s.index[n]
	scratch := s.pages.Get().([]byte)
	defer s.pages.Put(scratch)
	//lint:ignore vetrnn/execpoll fragment-chain walk inside the Adjacency primitive itself; callers poll per call
	for ref.Page != InvalidPage {
		page, err := s.bm.GetInto(ref.Page, scratch)
		if err != nil {
			return nil, fmt.Errorf("storage: adjacency of node %d: %w", n, err)
		}
		owner, next, extended, err := ReadFragment(page, s.bm.File().PageSize(), int(ref.Slot), buf)
		if err != nil {
			return nil, fmt.Errorf("storage: adjacency of node %d: %w", n, err)
		}
		if owner != n {
			return nil, fmt.Errorf("storage: fragment at page %d slot %d belongs to node %d, want %d", ref.Page, ref.Slot, owner, n)
		}
		buf = extended
		ref = next
	}
	return buf, nil
}

// Buffer exposes the buffer manager (for stats and cache control).
func (s *DiskStore) Buffer() *BufferManager { return s.bm }

// Close detaches the store's buffer tenant from its pool, flushing dirty
// pages and returning any contributed capacity. The store must not be
// used afterwards; Close is idempotent.
func (s *DiskStore) Close() error {
	if s.bm == nil {
		return nil
	}
	bm := s.bm
	s.bm = nil
	return bm.Detach()
}

// WithFile returns a store that shares this store's node index but reads
// pages from an alternative file with identical layout — a hook for
// failure-injection tests and for reopening a previously built page file.
func (s *DiskStore) WithFile(file PagedFile, bufferPages int) *DiskStore {
	return newDiskStore(NewBufferManager(file, bufferPages), s.index, s.numNodes)
}

// Stats returns the I/O counters of the underlying buffer.
func (s *DiskStore) Stats() Stats { return s.bm.Stats() }

// ResetStats zeroes the I/O counters.
func (s *DiskStore) ResetStats() { s.bm.ResetStats() }

// NumPages returns the size of the adjacency file in pages.
func (s *DiskStore) NumPages() int { return s.bm.File().NumPages() }

// BFSOrder returns the nodes of g in breadth-first order (seeding each
// connected component from its smallest node id). Packing adjacency lists
// in this order places topological neighbours in the same or adjacent
// pages, approximating the locality grouping of Chan & Zhang that the paper
// adopts for its storage scheme.
func BFSOrder(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	order := make([]graph.NodeID, 0, n)
	seen := make([]bool, n)
	queue := make([]graph.NodeID, 0, 64)
	var buf []graph.Edge
	for s := graph.NodeID(0); int(s) < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], s)
		//lint:ignore vetrnn/execpoll layout-time BFS over the in-memory source graph
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			buf, _ = g.Adjacency(u, buf)
			for _, e := range buf {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	return order
}
