package storage

import (
	"encoding/binary"
	"fmt"
)

// Journal is a tiny write-ahead log for materialization maintenance: one
// paged file holding the records of at most one in-flight repair operation
// (the before-images of every K-NN list the repair touches, plus a
// descriptor of the point-set mutation). The ARIES discipline is reduced to
// its essentials because a repair is a single transaction over one file:
//
//   - Begin(seq) opens operation seq; every page the operation writes is
//     stamped with seq, so pages left over from earlier operations (the
//     file's pages are reused, never truncated) are ignored on replay.
//   - Append(payload) adds one record and writes the containing page
//     through to the file immediately — the write-ahead rule: a list
//     page may reach its file only after its before-image is in the
//     journal. The page is rewritten per record; journal pages are tiny
//     and maintenance is not the hot path.
//   - Replay(seq, fn) streams the records of operation seq back, in
//     append order, for rollback.
//
// Whether an operation is pending is not the journal's call: the owner
// (the materialization file header) records the active seq and a pending
// flag, and its single header-page write is the commit flip. The journal
// itself is dumb storage.
//
// Page layout:
//
//	[0:8]   uint64 operation seq
//	[8:10]  uint16 record count
//	[10:..] records, each prefixed by a uint16 length
type Journal struct {
	file PagedFile
	// current write position (only meaningful between Begin and the end
	// of the operation).
	seq   uint64
	page  PageID
	buf   []byte
	used  int
	nrec  int
	begun bool
	// sync makes every record append fsync the journal file, upgrading the
	// write-ahead rule from write-ordering to crash-durability (see
	// SetSync).
	sync bool
}

// SetSync selects whether each Append also syncs the journal file to
// stable storage. Off (the default) the journal guarantees write ordering
// only — enough for process-crash recovery over an OS that keeps its page
// cache; on, each record is durable before Append returns, extending the
// guarantee to power loss at the cost of one fsync per record.
func (j *Journal) SetSync(on bool) { j.sync = on }

const journalPageHeader = 10

// NewJournal wraps file as a repair journal. The file may be empty or hold
// pages of earlier operations; they are ignored until a Replay asks for
// their seq.
func NewJournal(file PagedFile) *Journal {
	return &Journal{file: file}
}

// File returns the underlying paged file.
func (j *Journal) File() PagedFile { return j.file }

// MaxRecord returns the largest payload one journal record can carry.
func (j *Journal) MaxRecord() int {
	return JournalMaxRecord(j.file.PageSize())
}

// JournalMaxRecord is the largest record payload a journal of the given
// page size can carry — the bound owners validate against before they
// depend on journaling (e.g. a list before-image must fit one record).
func JournalMaxRecord(pageSize int) int {
	return pageSize - journalPageHeader - 2
}

// Begin opens operation seq, rewinding the write position to page 0. The
// caller must ensure no other operation is in flight.
func (j *Journal) Begin(seq uint64) {
	j.seq = seq
	j.page = 0
	if j.buf == nil {
		j.buf = make([]byte, j.file.PageSize())
	}
	j.resetPage()
	j.begun = true
}

func (j *Journal) resetPage() {
	for i := range j.buf {
		j.buf[i] = 0
	}
	binary.LittleEndian.PutUint64(j.buf[0:], j.seq)
	j.used = journalPageHeader
	j.nrec = 0
}

// Append adds one record to the open operation and writes the containing
// page through to the file before returning, so the record is in the
// journal before the caller overwrites whatever it describes.
func (j *Journal) Append(payload []byte) error {
	if !j.begun {
		return fmt.Errorf("storage: journal append outside an operation")
	}
	if len(payload) > j.MaxRecord() {
		return fmt.Errorf("storage: journal record of %d bytes exceeds page capacity %d", len(payload), j.MaxRecord())
	}
	if j.used+2+len(payload) > len(j.buf) {
		// Page full: the flushed copy is already durable; move on.
		j.page++
		j.resetPage()
	}
	binary.LittleEndian.PutUint16(j.buf[j.used:], uint16(len(payload)))
	copy(j.buf[j.used+2:], payload)
	j.used += 2 + len(payload)
	j.nrec++
	binary.LittleEndian.PutUint16(j.buf[8:], uint16(j.nrec))
	return j.writeCurrent()
}

// writeCurrent flushes the in-progress page to the file, reusing an
// existing page slot when one exists and appending otherwise.
func (j *Journal) writeCurrent() error {
	if int(j.page) < j.file.NumPages() {
		if err := j.file.Write(j.page, j.buf); err != nil {
			return err
		}
		return j.maybeSync()
	}
	id, err := j.file.Append(j.buf)
	if err != nil {
		return err
	}
	if id != j.page {
		return fmt.Errorf("storage: journal expected page %d, appended %d", j.page, id)
	}
	return j.maybeSync()
}

func (j *Journal) maybeSync() error {
	if !j.sync {
		return nil
	}
	return SyncFile(j.file)
}

// End closes the operation's write position (commit or rollback decided
// elsewhere; the records stay in the file until the pages are reused).
func (j *Journal) End() { j.begun = false }

// Replay streams the records of operation seq in append order. It stops at
// the first page whose stamp differs from seq — the reuse boundary — and
// returns fn's first error.
func (j *Journal) Replay(seq uint64, fn func(payload []byte) error) error {
	buf := make([]byte, j.file.PageSize())
	for id := PageID(0); int(id) < j.file.NumPages(); id++ {
		if err := j.file.Read(id, buf); err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(buf[0:]) != seq {
			return nil
		}
		nrec := int(binary.LittleEndian.Uint16(buf[8:]))
		off := journalPageHeader
		for i := 0; i < nrec; i++ {
			if off+2 > len(buf) {
				return fmt.Errorf("storage: corrupt journal page %d", id)
			}
			n := int(binary.LittleEndian.Uint16(buf[off:]))
			if off+2+n > len(buf) {
				return fmt.Errorf("storage: corrupt journal record %d of page %d", i, id)
			}
			if err := fn(buf[off+2 : off+2+n]); err != nil {
				return err
			}
			off += 2 + n
		}
	}
	return nil
}
