package storage

import (
	"sync"
	"testing"
)

// TestPoolTenantQuota pins the per-tenant quota: a tenant with quota q
// never holds more than q frames, no matter how many pages it touches,
// while an unbounded tenant in the same pool keeps caching freely.
func TestPoolTenantQuota(t *testing.T) {
	fa := newTestFile(t, 64, 8)
	fb := newTestFile(t, 64, 8)
	p := NewBufferPool(10)
	a := p.Attach("a", fa, 2)
	b := p.Attach("b", fb, 0)

	for i := 0; i < 5; i++ {
		if _, err := a.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	ts := p.TenantStats()
	if ts[0].Frames > 2 {
		t.Fatalf("tenant a holds %d frames, quota 2", ts[0].Frames)
	}
	if got := a.Stats(); got.Reads != 5 || got.Evictions != 3 {
		t.Fatalf("tenant a stats = %+v, want 5 reads, 3 evictions", got)
	}
	// The oldest pages fell out; re-reading one is a fresh fault.
	if _, err := a.Get(0); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats(); got.Reads != 6 {
		t.Fatalf("re-read of evicted page: reads = %d, want 6", got.Reads)
	}
	// The quota-2 tenant never disturbed tenant b.
	for i := 0; i < 4; i++ {
		if _, err := b.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := b.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Stats(); got.Reads != 4 || got.Hits != 4 {
		t.Fatalf("tenant b stats = %+v, want 4 reads 4 hits", got)
	}
}

// TestPoolSharedCapacity verifies global LRU pressure across tenants: two
// unbounded tenants compete for the pool's frames and evict each other.
func TestPoolSharedCapacity(t *testing.T) {
	fa := newTestFile(t, 64, 8)
	fb := newTestFile(t, 64, 8)
	p := NewBufferPool(4)
	a := p.Attach("a", fa, 0)
	b := p.Attach("b", fb, 0)

	for i := 0; i < 4; i++ {
		if _, err := a.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// b's faults push a's pages out of the shared pool.
	for i := 0; i < 4; i++ {
		if _, err := b.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats(); got.Evictions != 4 {
		t.Fatalf("tenant a evictions = %d, want 4", got.Evictions)
	}
	if _, err := a.Get(0); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats(); got.Reads != 5 {
		t.Fatalf("tenant a reads after churn = %d, want 5", got.Reads)
	}
}

// TestPoolUnifiedStats checks the single stats source: the pool aggregate
// equals the sum of the tenants, maintained at the same increment sites.
func TestPoolUnifiedStats(t *testing.T) {
	fa := newTestFile(t, 64, 8)
	fb := newTestFile(t, 64, 8)
	p := NewBufferPool(8)
	a := p.Attach("graph", fa, 0)
	b := p.Attach("mat", fb, 0)

	for i := 0; i < 3; i++ {
		if _, err := a.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := a.Stats().Add(b.Stats())
	if got := p.Stats(); got != want {
		t.Fatalf("pool stats = %+v, tenant sum = %+v", got, want)
	}
	if got := p.Stats(); got.Reads != 5 || got.Hits != 2 {
		t.Fatalf("pool stats = %+v, want 5 reads 2 hits", got)
	}
	if hr := p.Stats().HitRate(); hr != 2.0/7.0 {
		t.Fatalf("hit rate = %v", hr)
	}
	if p.Reads() != 5 {
		t.Fatalf("Reads() = %d", p.Reads())
	}
	p.ResetStats()
	if got := p.Stats(); got != (Stats{}) {
		t.Fatalf("after reset: %+v", got)
	}
	if got := a.Stats(); got != (Stats{}) {
		t.Fatalf("tenant after pool reset: %+v", got)
	}
}

// TestPoolNoCacheTenant: a NoCache tenant never occupies frames, every
// access is physical, and cached tenants are unaffected.
func TestPoolNoCacheTenant(t *testing.T) {
	fa := newTestFile(t, 64, 4)
	fb := newTestFile(t, 64, 4)
	p := NewBufferPool(8)
	raw := p.Attach("raw", fa, NoCache)
	warm := p.Attach("warm", fb, 0)

	if _, err := warm.Get(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := raw.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	if got := raw.Stats(); got.Reads != 3 || got.Hits != 0 {
		t.Fatalf("NoCache tenant stats = %+v", got)
	}
	if ts := p.TenantStats(); ts[0].Frames != 0 {
		t.Fatalf("NoCache tenant holds %d frames", ts[0].Frames)
	}
	if _, err := warm.Get(1); err != nil {
		t.Fatal(err)
	}
	if got := warm.Stats(); got.Reads != 1 || got.Hits != 1 {
		t.Fatalf("warm tenant stats = %+v", got)
	}
	// Uncached updates write through.
	if err := raw.Update(2, func(p []byte) error { p[3] = 7; return nil }); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := fa.Read(2, dst); err != nil || dst[3] != 7 {
		t.Fatalf("write-through failed: %v %d", err, dst[3])
	}
}

// TestPoolDetach: detaching a tenant flushes its dirty pages, frees its
// frames and returns grown capacity.
func TestPoolDetach(t *testing.T) {
	fa := newTestFile(t, 64, 4)
	fb := newTestFile(t, 64, 4)
	p := NewBufferPool(0)
	a := p.AttachGrowing("a", fa, 4)
	b := p.AttachGrowing("b", fb, 4)
	if p.Capacity() != 8 {
		t.Fatalf("capacity = %d, want 8", p.Capacity())
	}
	if err := a.Update(1, func(p []byte) error { p[0] = 42; return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Detach(); err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 4 {
		t.Fatalf("capacity after detach = %d, want 4", p.Capacity())
	}
	dst := make([]byte, 64)
	if err := fa.Read(1, dst); err != nil || dst[0] != 42 {
		t.Fatalf("detach did not flush: %v %d", err, dst[0])
	}
	ts := p.TenantStats()
	if len(ts) != 1 || ts[0].Name != "b" || ts[0].Frames != 1 {
		t.Fatalf("tenants after detach = %+v", ts)
	}
}

// TestPoolConcurrentTenants hammers two tenants from many goroutines to
// give the race detector a shared-pool workout.
func TestPoolConcurrentTenants(t *testing.T) {
	fa := newTestFile(t, 64, 16)
	fb := newTestFile(t, 64, 16)
	p := NewBufferPool(8)
	a := p.Attach("a", fa, 4)
	b := p.Attach("b", fb, 0)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tn := a
			if g%2 == 0 {
				tn = b
			}
			buf := make([]byte, 64)
			for i := 0; i < 200; i++ {
				id := PageID((g + i) % 16)
				got, err := tn.GetInto(id, buf)
				if err != nil {
					t.Error(err)
					return
				}
				if got[0] != byte(id) {
					t.Errorf("page %d content = %d", id, got[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	sum := a.Stats().Add(b.Stats())
	if got := p.Stats(); got != sum {
		t.Fatalf("pool stats %+v != tenant sum %+v", got, sum)
	}
}
