package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// DefaultPageSize is the page size used throughout the experiments; the
// paper's evaluation uses 4 KB pages.
const DefaultPageSize = 4096

// PageID identifies a page within a PagedFile.
type PageID int32

// InvalidPage marks the absence of a page reference (e.g. end of an
// adjacency overflow chain).
const InvalidPage PageID = -1

// ErrPageOutOfRange is returned when a page id does not exist in the file.
var ErrPageOutOfRange = errors.New("storage: page id out of range")

// PagedFile is random access storage in fixed-size pages. Implementations
// are not safe for concurrent use; each query engine owns its files.
type PagedFile interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Read copies page id into dst, which must be at least PageSize bytes.
	Read(id PageID, dst []byte) error
	// Write overwrites page id with src, which must be PageSize bytes.
	Write(id PageID, src []byte) error
	// Append allocates a new page holding src and returns its id.
	Append(src []byte) (PageID, error)
	// Close releases underlying resources.
	Close() error
}

// MemFile is a PagedFile backed by main memory. It is the default substrate
// for experiments: physical I/O is *accounted* by the buffer manager (the
// cost model charges 10 ms per fault, following the paper) without paying
// for real disk access, which keeps runs deterministic.
//
// Concurrent Reads are safe; Write and Append require that no other call
// is in flight. That exclusion comes from the DB-level contract (no
// mutating operation runs while queries are in flight), not from
// BufferManager locking — faulting Gets read the file outside the buffer
// mutex.
type MemFile struct {
	pageSize int
	pages    [][]byte
}

// NewMemFile creates an empty in-memory paged file.
func NewMemFile(pageSize int) *MemFile {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemFile{pageSize: pageSize}
}

// PageSize implements PagedFile.
func (f *MemFile) PageSize() int { return f.pageSize }

// NumPages implements PagedFile.
func (f *MemFile) NumPages() int { return len(f.pages) }

// Read implements PagedFile.
func (f *MemFile) Read(id PageID, dst []byte) error {
	if id < 0 || int(id) >= len(f.pages) {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	if len(dst) < f.pageSize {
		return fmt.Errorf("storage: read buffer %d smaller than page size %d", len(dst), f.pageSize)
	}
	copy(dst[:f.pageSize], f.pages[id])
	return nil
}

// Write implements PagedFile.
func (f *MemFile) Write(id PageID, src []byte) error {
	if id < 0 || int(id) >= len(f.pages) {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	if len(src) != f.pageSize {
		return fmt.Errorf("storage: write of %d bytes, want page size %d", len(src), f.pageSize)
	}
	copy(f.pages[id], src)
	return nil
}

// Append implements PagedFile.
func (f *MemFile) Append(src []byte) (PageID, error) {
	if len(src) != f.pageSize {
		return InvalidPage, fmt.Errorf("storage: append of %d bytes, want page size %d", len(src), f.pageSize)
	}
	page := make([]byte, f.pageSize)
	copy(page, src)
	f.pages = append(f.pages, page)
	return PageID(len(f.pages) - 1), nil
}

// Close implements PagedFile.
func (f *MemFile) Close() error { return nil }

// OSFile is a PagedFile backed by a file on disk, for users who want the
// graph to live outside process memory.
type OSFile struct {
	f        *os.File
	pageSize int
	numPages int
}

// CreateOSFile creates (truncating) a page file at path.
func CreateOSFile(path string, pageSize int) (*OSFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	return &OSFile{f: f, pageSize: pageSize}, nil
}

// OpenOSFile opens an existing page file at path.
func OpenOSFile(path string, pageSize int) (*OSFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of page size %d", path, st.Size(), pageSize)
	}
	return &OSFile{f: f, pageSize: pageSize, numPages: int(st.Size() / int64(pageSize))}, nil
}

// PageSize implements PagedFile.
func (f *OSFile) PageSize() int { return f.pageSize }

// NumPages implements PagedFile.
func (f *OSFile) NumPages() int { return f.numPages }

// Read implements PagedFile.
func (f *OSFile) Read(id PageID, dst []byte) error {
	if id < 0 || int(id) >= f.numPages {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, f.numPages)
	}
	if len(dst) < f.pageSize {
		return fmt.Errorf("storage: read buffer %d smaller than page size %d", len(dst), f.pageSize)
	}
	_, err := f.f.ReadAt(dst[:f.pageSize], int64(id)*int64(f.pageSize))
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// Write implements PagedFile.
func (f *OSFile) Write(id PageID, src []byte) error {
	if id < 0 || int(id) >= f.numPages {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, f.numPages)
	}
	if len(src) != f.pageSize {
		return fmt.Errorf("storage: write of %d bytes, want page size %d", len(src), f.pageSize)
	}
	if _, err := f.f.WriteAt(src, int64(id)*int64(f.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Append implements PagedFile.
func (f *OSFile) Append(src []byte) (PageID, error) {
	if len(src) != f.pageSize {
		return InvalidPage, fmt.Errorf("storage: append of %d bytes, want page size %d", len(src), f.pageSize)
	}
	id := PageID(f.numPages)
	if _, err := f.f.WriteAt(src, int64(id)*int64(f.pageSize)); err != nil {
		return InvalidPage, fmt.Errorf("storage: append page %d: %w", id, err)
	}
	f.numPages++
	return id, nil
}

// Sync flushes the file's written pages to stable storage.
func (f *OSFile) Sync() error {
	if err := f.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Close implements PagedFile.
func (f *OSFile) Close() error { return f.f.Close() }

// SyncFile pushes f's writes to stable storage when the implementation
// knows how (OSFile, or any wrapper exposing Sync). In-memory files have
// nothing to sync and report success, which keeps durability opt-in
// without forking the PagedFile interface.
func SyncFile(f PagedFile) error {
	if s, ok := f.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}
