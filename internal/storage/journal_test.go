package storage

import (
	"bytes"
	"fmt"
	"testing"
)

func collectJournal(t *testing.T, j *Journal, seq uint64) [][]byte {
	t.Helper()
	var out [][]byte
	if err := j.Replay(seq, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJournalRoundTrip(t *testing.T) {
	j := NewJournal(NewMemFile(128))
	j.Begin(1)
	records := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{7}, 100)}
	for _, r := range records {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.End()
	got := collectJournal(t, j, 1)
	if len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], records[i])
		}
	}
}

func TestJournalPageOverflowAndReuse(t *testing.T) {
	j := NewJournal(NewMemFile(64))
	// Operation 1 spills over several pages.
	j.Begin(1)
	var want [][]byte
	for i := 0; i < 20; i++ {
		r := []byte(fmt.Sprintf("record-%02d", i))
		want = append(want, r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.End()
	if j.file.NumPages() < 2 {
		t.Fatalf("expected multiple journal pages, got %d", j.file.NumPages())
	}
	got := collectJournal(t, j, 1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}

	// Operation 2 reuses the pages; replay must stop at the seq boundary
	// and not resurrect operation 1's tail.
	j.Begin(2)
	if err := j.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	j.End()
	got = collectJournal(t, j, 2)
	if len(got) != 1 || string(got[0]) != "fresh" {
		t.Fatalf("operation 2 replay = %q, want [fresh]", got)
	}
	if got := collectJournal(t, j, 1); len(got) != 0 {
		t.Fatalf("operation 1 should be unreadable after page reuse from page 0, got %d records", len(got))
	}
}

func TestJournalValidation(t *testing.T) {
	j := NewJournal(NewMemFile(64))
	if err := j.Append([]byte("x")); err == nil {
		t.Fatal("append outside an operation accepted")
	}
	j.Begin(1)
	if err := j.Append(make([]byte, j.MaxRecord()+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if err := j.Append(make([]byte, j.MaxRecord())); err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
	j.End()
}
