package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferPool is one LRU page cache shared by any number of paged files
// ("tenants"): graph adjacency pages, materialized K-NN lists, hub-label
// pages and edge-point files all draw frames from the same pool, replacing
// the three independent per-substrate buffers the repository grew up with.
//
// Frames live on a single global LRU list. Each tenant may carry a quota —
// an upper bound on the frames it can hold — so one substrate cannot evict
// the rest of the pool behind the caller's back; tenants without a quota
// share the pool's capacity freely. Per-tenant and pool-wide hit/miss/
// eviction counters come from one set of increment sites, so there is a
// single source of truth for I/O accounting.
//
// Concurrency follows the discipline of the former BufferManager: one
// mutex guards the frame table and LRU list, counters are atomic (snapshots
// and resets never block behind an in-flight page fault), a faulting Get
// releases the mutex for the duration of the physical read, and concurrent
// Gets of the same missing page coalesce into one read via the frame's
// ready latch.
type BufferPool struct {
	mu       sync.Mutex
	capacity int        // vetrnn:guardedby mu
	lru      *list.List // front = most recently used; values are *frame; vetrnn:guardedby mu
	nframes  int        // vetrnn:guardedby mu
	//lint:ignore vetrnn/tenantclose the registry tenants detach from, not an owned handle: Tenant.Detach removes its own entry
	tenants []*Tenant // vetrnn:guardedby mu
	// trackGlobal records whether the pool-wide LRU order can ever decide
	// an eviction: false when every tenant is quota-bounded and the
	// capacity covers the quota sum (the default DB composition), in
	// which case hits skip the global MoveToFront — the hit path then
	// costs exactly what the former per-substrate BufferManager did.
	trackGlobal bool // vetrnn:guardedby mu
	// reads is the pool-wide physical-read counter — the only aggregate
	// maintained inline (it backs per-query I/O budgets and only moves on
	// misses, which pay a physical read anyway). Everything else is
	// summed from the tenants on demand, keeping the hit path at one
	// atomic increment.
	reads atomic.Int64
}

// refreshTrackLocked recomputes trackGlobal after a capacity or tenant
// change.
// vetrnn:holds p.mu
func (p *BufferPool) refreshTrackLocked() {
	sum := 0
	track := false
	for _, t := range p.tenants {
		if t.quota == 0 {
			track = true
		} else if t.quota > 0 {
			sum += t.quota
		}
	}
	p.trackGlobal = track || p.capacity < sum
}

// Tenant is one paged file's view of a BufferPool. It exposes the exact
// Get/Update/Append/Flush/Invalidate surface the per-substrate
// BufferManager used to, so storage clients are agnostic about whether
// their buffer is private or shared.
type Tenant struct {
	pool  *BufferPool
	name  string
	file  PagedFile
	quota int // >0 max frames; 0 no per-tenant cap; <0 never cached
	grown int // capacity contributed via AttachGrowing, returned on Detach; vetrnn:guardedby pool.mu

	frames map[PageID]*frame // vetrnn:guardedby pool.mu
	// tlru orders the tenant's own frames by recency so quota eviction is
	// O(1) instead of scanning the pool-wide list past other tenants'
	// frames.
	tlru  *list.List // vetrnn:guardedby pool.mu
	stats atomicStats

	// scratch page used for uncached updates.
	scratch []byte // vetrnn:guardedby pool.mu
}

// NoCache, passed as a tenant quota, keeps the tenant's pages out of the
// pool entirely: every access is a counted physical transfer (the paper's
// zero-buffer measurement mode), while other tenants keep caching.
const NoCache = -1

// atomicStats is the lock-free representation of Stats, so that I/O
// counters can be read and reset while queries fault pages in.
type atomicStats struct {
	reads     atomic.Int64
	hits      atomic.Int64
	writes    atomic.Int64
	evictions atomic.Int64
}

func (a *atomicStats) snapshot() Stats {
	return Stats{
		Reads:     a.reads.Load(),
		Hits:      a.hits.Load(),
		Writes:    a.writes.Load(),
		Evictions: a.evictions.Load(),
	}
}

func (a *atomicStats) reset() {
	a.reads.Store(0)
	a.hits.Store(0)
	a.writes.Store(0)
	a.evictions.Store(0)
}

// frame is one buffered page. ready is closed once data holds the page
// contents (or err the read failure); a frame created from data already in
// hand (Append, Update's synchronous admission) is born ready.
type frame struct {
	//lint:ignore vetrnn/tenantclose eviction back-pointer; the frame does not own its tenant
	owner *Tenant
	id    PageID
	data  []byte
	dirty bool
	elem  *list.Element // position in the pool-wide LRU
	telem *list.Element // position in the owner's LRU
	ready chan struct{}
	err   error
}

// loaded reports whether the frame's physical read has completed. Pending
// frames must not be evicted or written back.
func (fr *frame) loaded() bool {
	select {
	case <-fr.ready:
		return true
	default:
		return false
	}
}

func newReadyChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// NewBufferPool creates a pool of capPages frames. A capacity of zero
// means no page is ever cached: every logical access performs (and counts)
// a physical transfer.
func NewBufferPool(capPages int) *BufferPool {
	if capPages < 0 {
		capPages = 0
	}
	return &BufferPool{capacity: capPages, lru: list.New()}
}

// Attach registers file as a tenant of the pool. quota > 0 bounds the
// frames the tenant may hold, 0 leaves it bounded only by the pool's
// capacity, and NoCache keeps its pages out of the pool entirely. Tenant
// names are labels for stats reporting; they need not be unique.
func (p *BufferPool) Attach(name string, file PagedFile, quota int) *Tenant {
	t := &Tenant{
		pool:    p,
		name:    name,
		file:    file,
		quota:   quota,
		frames:  make(map[PageID]*frame),
		tlru:    list.New(),
		scratch: make([]byte, file.PageSize()),
	}
	p.mu.Lock()
	p.tenants = append(p.tenants, t)
	p.refreshTrackLocked()
	p.mu.Unlock()
	return t
}

// AttachGrowing is Attach, additionally growing the pool's capacity by the
// tenant's quota. It is the wiring used by substrates that bring their own
// buffer budget to a shared pool (the default DB composition): each
// substrate is bounded by its quota, the pool's capacity is the sum, and
// eviction behaviour matches the former independent buffers exactly.
// Detach returns the contributed capacity.
func (p *BufferPool) AttachGrowing(name string, file PagedFile, quota int) *Tenant {
	t := p.Attach(name, file, quota)
	if quota > 0 {
		p.mu.Lock()
		p.capacity += quota
		t.markGrown(quota)
		p.refreshTrackLocked()
		p.mu.Unlock()
	}
	return t
}

// markGrown records the capacity the tenant contributed via
// AttachGrowing, so Detach can return it. Attach set t.pool to the
// caller's pool, so the pool mutex the caller holds is t.pool.mu.
//
// vetrnn:holds t.pool.mu
func (t *Tenant) markGrown(quota int) { t.grown = quota }

// Grow raises the pool's capacity by pages.
func (p *BufferPool) Grow(pages int) {
	if pages <= 0 {
		return
	}
	p.mu.Lock()
	p.capacity += pages
	p.refreshTrackLocked()
	p.mu.Unlock()
}

// Capacity returns the pool's capacity in frames.
func (p *BufferPool) Capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Stats returns the pool-wide I/O counters: the sum of every tenant's
// traffic. Safe to call while queries fault pages in.
func (p *BufferPool) Stats() Stats {
	p.mu.Lock()
	tenants := append([]*Tenant(nil), p.tenants...)
	p.mu.Unlock()
	var sum Stats
	for _, t := range tenants {
		sum = sum.Add(t.stats.snapshot())
	}
	return sum
}

// Reads returns the pool-wide physical read counter — the hook per-query
// I/O budgets poll. Unlike Stats it is a single atomic load, cheap enough
// for per-expansion-step checks.
func (p *BufferPool) Reads() int64 { return p.reads.Load() }

// ResetStats zeroes the pool-wide and every tenant's counters.
func (p *BufferPool) ResetStats() {
	p.reads.Store(0)
	p.mu.Lock()
	tenants := append([]*Tenant(nil), p.tenants...)
	p.mu.Unlock()
	for _, t := range tenants {
		t.stats.reset()
	}
}

// TenantStats describes one tenant's view of the pool.
type TenantStats struct {
	// Name is the label the tenant was attached under.
	Name string
	// Stats holds the tenant's own I/O counters.
	Stats Stats
	// Frames is the number of pool frames the tenant currently holds.
	Frames int
	// Quota is the tenant's frame quota (0 = none, NoCache = uncached).
	Quota int
}

// TenantStats returns a snapshot of every tenant, in attach order.
func (p *BufferPool) TenantStats() []TenantStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantStats, len(p.tenants))
	for i, t := range p.tenants {
		out[i] = t.statsRow()
	}
	return out
}

// statsRow captures one tenant's TenantStats entry. Callers reach t by
// iterating t.pool.tenants under the pool mutex, which is t.pool.mu.
//
// vetrnn:holds t.pool.mu
func (t *Tenant) statsRow() TenantStats {
	return TenantStats{Name: t.name, Stats: t.stats.snapshot(), Frames: len(t.frames), Quota: t.quota}
}

// --- Tenant surface --------------------------------------------------------

// File returns the underlying paged file.
func (t *Tenant) File() PagedFile { return t.file }

// Name returns the label the tenant was attached under.
func (t *Tenant) Name() string { return t.name }

// Pool returns the pool the tenant draws frames from.
func (t *Tenant) Pool() *BufferPool { return t.pool }

// Quota returns the tenant's frame quota.
func (t *Tenant) Quota() int { return t.quota }

// Capacity returns the frames the tenant may hold: its quota when set,
// otherwise the pool's capacity.
func (t *Tenant) Capacity() int {
	if t.quota > 0 {
		return t.quota
	}
	if t.quota < 0 {
		return 0
	}
	return t.pool.Capacity()
}

// Stats returns a copy of the tenant's accumulated I/O counters. It is
// safe to call while other goroutines access the pool.
func (t *Tenant) Stats() Stats { return t.stats.snapshot() }

// ResetStats zeroes the tenant's I/O counters (the pool-wide aggregate is
// left running; reset it through BufferPool.ResetStats).
func (t *Tenant) ResetStats() { t.stats.reset() }

// uncached reports whether the tenant's pages bypass the pool. Every call
// site holds p.mu (Get/Update/Append take it before the cache decision),
// which is what makes reading capacity here safe against concurrent
// Grow/Attach/Detach.
// vetrnn:holds t.pool.mu
func (t *Tenant) uncached() bool { return t.quota < 0 || t.pool.capacity == 0 }

func (t *Tenant) countRead()  { t.stats.reads.Add(1); t.pool.reads.Add(1) }
func (t *Tenant) countHit()   { t.stats.hits.Add(1) }
func (t *Tenant) countWrite() { t.stats.writes.Add(1) }
func (t *Tenant) countEvict() { t.stats.evictions.Add(1) }

// Get returns the contents of page id. The returned slice aliases the
// pool frame (or a private copy when the page is uncached) and must be
// treated as read-only; it stays valid until the page is mutated through
// Update.
func (t *Tenant) Get(id PageID) ([]byte, error) {
	return t.GetInto(id, nil)
}

// GetInto is Get with a caller-provided page buffer for the uncached case:
// when no frame will cache the page, its contents are read into buf (grown
// if needed) instead of a fresh allocation, so hot read paths stay
// allocation-free. The returned slice is either a cached frame (read-only,
// valid until the page is mutated through Update) or buf.
func (t *Tenant) GetInto(id PageID, buf []byte) ([]byte, error) {
	p := t.pool
	p.mu.Lock()
	if fr, ok := t.frames[id]; ok {
		if p.trackGlobal {
			p.lru.MoveToFront(fr.elem)
		}
		if fr.telem != nil {
			t.tlru.MoveToFront(fr.telem)
		}
		p.mu.Unlock()
		<-fr.ready // no-op when loaded; else wait for the in-flight read
		if fr.err != nil {
			return nil, fr.err
		}
		t.countHit()
		return fr.data, nil
	}
	t.countRead()
	if t.uncached() {
		// No frame will hold this page; read into the caller's buffer so
		// that concurrent uncached readers do not share a scratch page.
		p.mu.Unlock()
		if len(buf) < t.file.PageSize() {
			buf = make([]byte, t.file.PageSize())
		}
		if err := t.file.Read(id, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	// Admit a pending frame, then perform the physical read without
	// holding the mutex; concurrent requests for the same page find the
	// pending frame above and wait on its latch.
	if err := p.evictForLocked(t); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	fr := &frame{owner: t, id: id, data: make([]byte, t.file.PageSize()), ready: make(chan struct{})}
	p.admitLocked(fr)
	p.mu.Unlock()

	fr.err = t.file.Read(id, fr.data)
	if fr.err != nil {
		// Drop the failed frame so a later Get retries the read.
		p.mu.Lock()
		if cur, ok := t.frames[id]; ok && cur == fr {
			p.removeLocked(fr)
		}
		p.mu.Unlock()
	}
	close(fr.ready)
	if fr.err != nil {
		return nil, fr.err
	}
	return fr.data, nil
}

// Update fetches page id, applies fn to its contents in place, and marks
// the page dirty. An uncached page is written through immediately. Update
// must not run concurrently with readers of the same page; a miss is
// admitted synchronously under the lock, which is fine for the rare
// maintenance paths that use it.
func (t *Tenant) Update(id PageID, fn func(page []byte) error) error {
	p := t.pool
	for {
		p.mu.Lock()
		fr, ok := t.frames[id]
		if !ok {
			break
		}
		if fr.loaded() {
			t.countHit()
			if p.trackGlobal {
				p.lru.MoveToFront(fr.elem)
			}
			if fr.telem != nil {
				t.tlru.MoveToFront(fr.telem)
			}
			defer p.mu.Unlock()
			if err := fn(fr.data); err != nil {
				return err
			}
			fr.dirty = true
			return nil
		}
		// A concurrent Get is still reading this page in; wait for it and
		// re-check (the frame is dropped again on read failure).
		p.mu.Unlock()
		<-fr.ready
	}
	defer p.mu.Unlock()
	t.countRead()
	if t.uncached() {
		return t.updateUncachedLocked(id, fn)
	}
	if err := p.evictForLocked(t); err != nil {
		return err
	}
	fr := &frame{owner: t, id: id, data: make([]byte, t.file.PageSize()), ready: newReadyChan()}
	if err := t.file.Read(id, fr.data); err != nil {
		return err
	}
	p.admitLocked(fr)
	if err := fn(fr.data); err != nil {
		return err
	}
	fr.dirty = true
	return nil
}

// updateUncachedLocked applies fn to page id through the tenant's scratch
// page, writing the result through immediately (no frame caches it).
// vetrnn:holds t.pool.mu
func (t *Tenant) updateUncachedLocked(id PageID, fn func(page []byte) error) error {
	if err := t.file.Read(id, t.scratch); err != nil {
		return err
	}
	if err := fn(t.scratch); err != nil {
		return err
	}
	t.countWrite()
	return t.file.Write(id, t.scratch)
}

// Append allocates a new page in the underlying file (counted as one
// write) and admits it to the pool.
func (t *Tenant) Append(src []byte) (PageID, error) {
	p := t.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	t.countWrite()
	id, err := t.file.Append(src)
	if err != nil {
		return InvalidPage, err
	}
	if !t.uncached() {
		if err := p.evictForLocked(t); err != nil {
			return InvalidPage, err
		}
		fr := &frame{owner: t, id: id, data: make([]byte, t.file.PageSize()), ready: newReadyChan()}
		copy(fr.data, src)
		p.admitLocked(fr)
	}
	return id, nil
}

// Flush writes the tenant's dirty pages back to its file and retains the
// cache.
func (t *Tenant) Flush() error {
	p := t.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	return t.flushLocked()
}

// flushLocked writes the tenant's dirty pages back.
// vetrnn:holds t.pool.mu
func (t *Tenant) flushLocked() error {
	for _, fr := range t.frames {
		if fr.dirty {
			t.countWrite()
			if err := t.file.Write(fr.id, fr.data); err != nil {
				return fmt.Errorf("storage: flush page %d: %w", fr.id, err)
			}
			fr.dirty = false
		}
	}
	return nil
}

// Invalidate drops the tenant's cached frames (writing back dirty ones),
// so that a fresh workload starts from a cold buffer. Frames with reads
// still in flight are retained. Other tenants' frames are untouched.
func (t *Tenant) Invalidate() error {
	p := t.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := t.flushLocked(); err != nil {
		return err
	}
	for _, fr := range t.frames {
		if fr.loaded() {
			p.removeLocked(fr)
		}
	}
	return nil
}

// Detach flushes and drops the tenant's frames, removes it from the pool
// and returns any capacity it contributed through AttachGrowing. The
// tenant must not be used afterwards.
func (t *Tenant) Detach() error {
	p := t.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := t.flushLocked(); err != nil {
		return err
	}
	for _, fr := range t.frames {
		if fr.loaded() {
			p.removeLocked(fr)
		}
	}
	for i, other := range p.tenants {
		if other == t {
			p.tenants = append(p.tenants[:i], p.tenants[i+1:]...)
			break
		}
	}
	p.capacity -= t.grown
	t.grown = 0
	p.refreshTrackLocked()
	return nil
}

// --- pool internals (all called with p.mu held; the pool's one mutex
// guards every tenant reached through frame back-pointers, which is what
// the vetrnn:holds wildcard declares) ---------------------------------------

// admitLocked installs a frame in the pool- and owner-recency structures.
// vetrnn:holds *
func (p *BufferPool) admitLocked(fr *frame) {
	fr.elem = p.lru.PushFront(fr)
	if fr.owner.quota > 0 {
		// Only quota-bounded tenants need their own recency order.
		fr.telem = fr.owner.tlru.PushFront(fr)
	}
	fr.owner.frames[fr.id] = fr
	p.nframes++
}

// removeLocked drops a frame from the pool- and owner-recency structures.
// vetrnn:holds *
func (p *BufferPool) removeLocked(fr *frame) {
	p.lru.Remove(fr.elem)
	if fr.telem != nil {
		fr.owner.tlru.Remove(fr.telem)
	}
	delete(fr.owner.frames, fr.id)
	p.nframes--
}

// evictForLocked makes room for one new frame of tenant t: first the
// tenant's own LRU frames while it sits at quota, then the pool's global
// LRU while the pool sits at capacity. Frames whose physical read is still
// in flight are skipped; if every candidate is pending the pool
// temporarily exceeds its bound (bounded by the number of concurrent
// faulters), exactly like the former BufferManager.
// vetrnn:holds *
func (p *BufferPool) evictForLocked(t *Tenant) error {
	if t.quota > 0 && len(t.frames) >= t.quota {
		if err := p.evictLRULocked(t.tlru, func() bool { return len(t.frames) >= t.quota }); err != nil {
			return err
		}
	}
	return p.evictLRULocked(p.lru, func() bool { return p.nframes >= p.capacity })
}

// evictLRULocked evicts loaded frames from the back of l (the pool-wide
// list or one tenant's) while more() holds.
func (p *BufferPool) evictLRULocked(l *list.List, more func() bool) error {
	elem := l.Back()
	for more() && elem != nil {
		victim := elem.Value.(*frame)
		prev := elem.Prev()
		if !victim.loaded() {
			elem = prev
			continue
		}
		if victim.dirty {
			victim.owner.countWrite()
			if err := victim.owner.file.Write(victim.id, victim.data); err != nil {
				return fmt.Errorf("storage: evict page %d: %w", victim.id, err)
			}
		}
		victim.owner.countEvict()
		p.removeLocked(victim)
		elem = prev
	}
	return nil
}
