package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRecordPageQuickRoundTrip packs random records into pages and reads
// every one of them back bit-exactly.
func TestRecordPageQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pageSize := 128 + rng.Intn(4096)
		pb := NewRecordPageBuilder(pageSize)
		type placed struct {
			page int
			slot int
			data []byte
		}
		var pages [][]byte
		var recs []placed
		flush := func() {
			page := make([]byte, pageSize)
			copy(page, pb.Bytes())
			pages = append(pages, page)
			pb.Reset()
		}
		for i := 0; i < 60; i++ {
			n := rng.Intn(MaxRecordPayload(pageSize) + 1)
			rec := make([]byte, n)
			rng.Read(rec)
			slot, ok := pb.TryAdd(rec)
			if !ok {
				if pb.Empty() {
					return false // a fresh page must accept MaxRecordPayload
				}
				flush()
				if slot, ok = pb.TryAdd(rec); !ok {
					return false
				}
			}
			recs = append(recs, placed{page: len(pages), slot: slot, data: rec})
		}
		if !pb.Empty() {
			flush()
		}
		for _, r := range recs {
			got, err := ReadRecordSlot(pages[r.page], pageSize, r.slot)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, r.data) {
				return false
			}
		}
		// Slot counts are consistent.
		total := 0
		for _, p := range pages {
			total += RecordSlotCount(p)
		}
		return total == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordPageRejectsOversized(t *testing.T) {
	pb := NewRecordPageBuilder(256)
	if _, ok := pb.TryAdd(make([]byte, MaxRecordPayload(256)+1)); ok {
		t.Fatal("oversized record accepted")
	}
	if _, ok := pb.TryAdd(make([]byte, MaxRecordPayload(256))); !ok {
		t.Fatal("max-size record rejected")
	}
}

func TestReadRecordSlotBounds(t *testing.T) {
	pb := NewRecordPageBuilder(256)
	if _, ok := pb.TryAdd([]byte{1, 2, 3}); !ok {
		t.Fatal("add failed")
	}
	page := pb.Bytes()
	if _, err := ReadRecordSlot(page, 256, 1); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := ReadRecordSlot(page, 256, -1); err == nil {
		t.Fatal("negative slot accepted")
	}
}
