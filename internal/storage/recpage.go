package storage

import (
	"encoding/binary"
	"fmt"
)

// Generic slotted pages for variable-length records, shared by the edge
// point file (Fig 14b of the paper) and the materialized K-NN list file
// (Section 4.1). Layout mirrors the adjacency pages:
//
//	[0:2]  uint16 record count
//	[2:..] records growing upward, each prefixed by a uint16 length
//	[..:N] slot directory growing downward (uint16 record offsets)

// RecordPageBuilder assembles generic slotted pages.
type RecordPageBuilder struct {
	pageSize int
	buf      []byte
	used     int
	nrec     int
}

// NewRecordPageBuilder returns a builder for pages of pageSize bytes.
func NewRecordPageBuilder(pageSize int) *RecordPageBuilder {
	b := &RecordPageBuilder{pageSize: pageSize}
	b.Reset()
	return b
}

// Reset clears the builder for a fresh page.
func (b *RecordPageBuilder) Reset() {
	if b.buf == nil {
		b.buf = make([]byte, b.pageSize)
	} else {
		for i := range b.buf {
			b.buf[i] = 0
		}
	}
	b.used = pageHeaderSize
	b.nrec = 0
}

// Empty reports whether the current page holds no records.
func (b *RecordPageBuilder) Empty() bool { return b.nrec == 0 }

// FreeBytes returns the payload capacity left for one more record.
func (b *RecordPageBuilder) FreeBytes() int {
	return b.pageSize - b.used - slotEntrySize*(b.nrec+1) - 2
}

// MaxRecordPayload is the payload capacity of an empty page.
func MaxRecordPayload(pageSize int) int {
	return pageSize - pageHeaderSize - slotEntrySize - 2
}

// TryAdd appends a record and returns its slot; ok is false when the record
// does not fit in the current page.
func (b *RecordPageBuilder) TryAdd(rec []byte) (slot int, ok bool) {
	if len(rec) > b.FreeBytes() {
		return 0, false
	}
	off := b.used
	binary.LittleEndian.PutUint16(b.buf[off:], uint16(len(rec)))
	copy(b.buf[off+2:], rec)
	slot = b.nrec
	binary.LittleEndian.PutUint16(b.buf[b.pageSize-slotEntrySize*(slot+1):], uint16(off))
	b.used = off + 2 + len(rec)
	b.nrec++
	binary.LittleEndian.PutUint16(b.buf[0:], uint16(b.nrec))
	return slot, true
}

// Bytes returns the assembled page; the slice aliases the builder.
func (b *RecordPageBuilder) Bytes() []byte { return b.buf }

// ReadRecordSlot returns the payload of the record at slot. The slice
// aliases page, so in-place mutation through BufferManager.Update is
// possible for fixed-size records.
func ReadRecordSlot(page []byte, pageSize, slot int) ([]byte, error) {
	nrec := int(binary.LittleEndian.Uint16(page[0:]))
	if slot < 0 || slot >= nrec {
		return nil, fmt.Errorf("storage: record slot %d out of range [0,%d)", slot, nrec)
	}
	off := int(binary.LittleEndian.Uint16(page[pageSize-slotEntrySize*(slot+1):]))
	if off+2 > pageSize {
		return nil, fmt.Errorf("storage: corrupt record slot %d offset %d", slot, off)
	}
	n := int(binary.LittleEndian.Uint16(page[off:]))
	if off+2+n > pageSize {
		return nil, fmt.Errorf("storage: corrupt record slot %d length %d", slot, n)
	}
	return page[off+2 : off+2+n], nil
}

// RecordSlotCount returns the number of records in an encoded page.
func RecordSlotCount(page []byte) int {
	return int(binary.LittleEndian.Uint16(page[0:]))
}
