package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func newTestFile(t *testing.T, pageSize, numPages int) *MemFile {
	t.Helper()
	f := NewMemFile(pageSize)
	page := make([]byte, pageSize)
	for i := 0; i < numPages; i++ {
		page[0] = byte(i)
		if _, err := f.Append(page); err != nil {
			t.Fatalf("append page %d: %v", i, err)
		}
	}
	return f
}

func TestMemFileRoundTrip(t *testing.T) {
	f := newTestFile(t, 64, 4)
	dst := make([]byte, 64)
	for i := 0; i < 4; i++ {
		if err := f.Read(PageID(i), dst); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if dst[0] != byte(i) {
			t.Fatalf("page %d content = %d", i, dst[0])
		}
	}
	if err := f.Read(99, dst); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("read out of range: err = %v", err)
	}
	if err := f.Write(99, make([]byte, 64)); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("write out of range: err = %v", err)
	}
	if _, err := f.Append(make([]byte, 10)); err == nil {
		t.Fatal("append with wrong size succeeded")
	}
}

func TestOSFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/pages.db"
	f, err := CreateOSFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 128)
	for i := 0; i < 3; i++ {
		page[5] = byte(i * 7)
		if _, err := f.Append(page); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenOSFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", f2.NumPages())
	}
	dst := make([]byte, 128)
	for i := 0; i < 3; i++ {
		if err := f2.Read(PageID(i), dst); err != nil {
			t.Fatal(err)
		}
		if dst[5] != byte(i*7) {
			t.Fatalf("page %d byte = %d, want %d", i, dst[5], i*7)
		}
	}
	page[5] = 99
	if err := f2.Write(1, page); err != nil {
		t.Fatal(err)
	}
	if err := f2.Read(1, dst); err != nil || dst[5] != 99 {
		t.Fatalf("after rewrite: dst[5]=%d err=%v", dst[5], err)
	}
}

func TestBufferHitAndFault(t *testing.T) {
	f := newTestFile(t, 64, 8)
	bm := NewBufferManager(f, 4)
	for i := 0; i < 4; i++ {
		if _, err := bm.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := bm.Stats(); s.Reads != 4 || s.Hits != 0 {
		t.Fatalf("stats after cold reads = %+v", s)
	}
	for i := 0; i < 4; i++ {
		if _, err := bm.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := bm.Stats(); s.Reads != 4 || s.Hits != 4 {
		t.Fatalf("stats after warm reads = %+v", s)
	}
}

func TestBufferLRUEviction(t *testing.T) {
	f := newTestFile(t, 64, 8)
	bm := NewBufferManager(f, 2)
	mustGet := func(id PageID) {
		t.Helper()
		if _, err := bm.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(0) // cache: 0
	mustGet(1) // cache: 1,0
	mustGet(0) // touch 0 -> cache: 0,1
	mustGet(2) // evict 1 -> cache: 2,0
	mustGet(0) // hit
	if s := bm.Stats(); s.Reads != 3 || s.Hits != 2 {
		t.Fatalf("stats = %+v, want Reads=3 Hits=2", s)
	}
	mustGet(1) // fault again: 1 was evicted
	if s := bm.Stats(); s.Reads != 4 {
		t.Fatalf("stats = %+v, want Reads=4", s)
	}
}

func TestBufferZeroCapacity(t *testing.T) {
	f := newTestFile(t, 64, 4)
	bm := NewBufferManager(f, 0)
	for i := 0; i < 3; i++ {
		if _, err := bm.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	if s := bm.Stats(); s.Reads != 3 || s.Hits != 0 {
		t.Fatalf("capacity-0 stats = %+v, want 3 faults", s)
	}
	// Update must write through.
	err := bm.Update(2, func(p []byte) error { p[3] = 42; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if s := bm.Stats(); s.Writes != 1 {
		t.Fatalf("writes = %d, want 1", s.Writes)
	}
	dst := make([]byte, 64)
	if err := f.Read(2, dst); err != nil || dst[3] != 42 {
		t.Fatalf("write-through failed: %d %v", dst[3], err)
	}
}

func TestBufferDirtyWriteBack(t *testing.T) {
	f := newTestFile(t, 64, 8)
	bm := NewBufferManager(f, 1)
	if err := bm.Update(0, func(p []byte) error { p[1] = 9; return nil }); err != nil {
		t.Fatal(err)
	}
	// Underlying file must not see the change yet.
	dst := make([]byte, 64)
	if err := f.Read(0, dst); err != nil || dst[1] == 9 {
		t.Fatalf("dirty page leaked to file early (b=%d, err=%v)", dst[1], err)
	}
	// Evict by touching another page.
	if _, err := bm.Get(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Read(0, dst); err != nil || dst[1] != 9 {
		t.Fatalf("dirty page not written back on eviction (b=%d, err=%v)", dst[1], err)
	}
	if s := bm.Stats(); s.Writes != 1 {
		t.Fatalf("writes = %d, want 1", s.Writes)
	}
}

func TestBufferFlushAndInvalidate(t *testing.T) {
	f := newTestFile(t, 64, 8)
	bm := NewBufferManager(f, 8)
	for i := 0; i < 4; i++ {
		id := PageID(i)
		if err := bm.Update(id, func(p []byte) error { p[2] = byte(10 + i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := bm.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := bm.Stats(); s.Writes != 4 {
		t.Fatalf("writes = %d, want 4", s.Writes)
	}
	// Second flush writes nothing.
	if err := bm.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := bm.Stats(); s.Writes != 4 {
		t.Fatalf("writes after idempotent flush = %d, want 4", s.Writes)
	}
	if err := bm.Invalidate(); err != nil {
		t.Fatal(err)
	}
	bm.ResetStats()
	if _, err := bm.Get(0); err != nil {
		t.Fatal(err)
	}
	if s := bm.Stats(); s.Reads != 1 {
		t.Fatalf("cold read after Invalidate: stats = %+v", s)
	}
}

func TestBufferAppend(t *testing.T) {
	f := newTestFile(t, 64, 2)
	bm := NewBufferManager(f, 4)
	page := bytes.Repeat([]byte{7}, 64)
	id, err := bm.Append(page)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("append id = %d, want 2", id)
	}
	got, err := bm.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("appended page content = %d", got[0])
	}
	// Appended page should be cached (no extra fault).
	if s := bm.Stats(); s.Reads != 0 || s.Writes != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{Reads: 5, Hits: 2, Writes: 1}
	b := Stats{Reads: 2, Hits: 1, Writes: 1}
	if got := a.Add(b); got != (Stats{Reads: 7, Hits: 3, Writes: 2}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Stats{Reads: 3, Hits: 1, Writes: 0}) {
		t.Fatalf("Sub = %+v", got)
	}
	if a.IO() != 6 {
		t.Fatalf("IO = %d", a.IO())
	}
}

// TestBufferConcurrentGet hammers Get from many goroutines: same-page
// faults must coalesce into one physical read (waiters count as hits), and
// page contents must come back intact under eviction churn.
func TestBufferConcurrentGet(t *testing.T) {
	f := newTestFile(t, 64, 8)
	bm := NewBufferManager(f, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := bm.Get(3)
			if err != nil {
				t.Error(err)
				return
			}
			if data[0] != 3 {
				t.Errorf("page 3 content = %d", data[0])
			}
		}()
	}
	wg.Wait()
	if s := bm.Stats(); s.Reads != 1 || s.Hits != 15 {
		t.Fatalf("stats = %+v, want exactly one physical read", s)
	}

	// Tiny buffer: concurrent faults across pages with eviction churn.
	bm2 := NewBufferManager(f, 2)
	for round := 0; round < 4; round++ {
		for p := 0; p < 8; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				data, err := bm2.Get(PageID(p))
				if err != nil {
					t.Error(err)
					return
				}
				if data[0] != byte(p) {
					t.Errorf("page %d content = %d", p, data[0])
				}
			}(p)
		}
	}
	wg.Wait()
}

// TestBufferConcurrentGetError checks that a failed fault propagates to all
// coalesced waiters and is retried (not cached) afterwards.
func TestBufferConcurrentGetError(t *testing.T) {
	f := newTestFile(t, 64, 2)
	bm := NewBufferManager(f, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := bm.Get(77); err == nil {
				t.Error("out-of-range page read succeeded")
			}
		}()
	}
	wg.Wait()
	// The failed page must not linger as a frame.
	if _, err := bm.Get(1); err != nil {
		t.Fatal(err)
	}
}
