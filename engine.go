package graphrnn

import (
	"context"
	"iter"
	"time"

	"graphrnn/internal/core"
	"graphrnn/internal/exec"
)

// This file is the execution half of the unified query API: one engine
// surface — Run for a single query, RunBatch for worker-pool fan-out,
// Stream for incremental member delivery — executing any planned Query.
// Every future cross-cutting feature (admission control, sharding, async
// execution) plugs in here instead of multiplying per-shape entry points.

// Run executes one declarative query: it plans the substrate (see DB.Plan),
// runs it under ctx plus the query's embedded QueryOptions, and returns the
// answer with the planner's decision in Result.Plan.
//
// Cancellation, deadlines and budgets follow the engine contract of the
// *Context era: a query abandoned mid-flight returns the partial Result
// alongside a typed error (ErrCanceled / ErrDeadlineExceeded /
// ErrBudgetExceeded; match with errors.Is or IsExecErr), and a query issued
// with an already-expired deadline fails before any page I/O. A background
// context with zero QueryOptions pays no bookkeeping at all.
func (db *DB) Run(ctx context.Context, q Query) (*Result, error) {
	pl, err := db.plan(q)
	if err != nil {
		return nil, err
	}
	ec, cancel, err := db.newExec(ctx, &q.QueryOptions)
	if err != nil {
		return nil, err
	}
	defer cancel()
	res, err := db.runPlanned(ec, &pl)
	if res != nil {
		res.Plan = pl.plan
	}
	return res, err
}

// runPlanned dispatches a planned query to its executor.
func (db *DB) runPlanned(ec *exec.Ctx, pl *planned) (*Result, error) {
	algo := pl.plan.Algorithm
	switch pl.plan.Kind {
	case KindRNN:
		if pl.plan.Edge {
			return db.runEdgeRNN(ec, pl.edge, pl.loc, pl.k, algo)
		}
		return db.runRNN(ec, pl.node, pl.qnode, pl.k, algo)
	case KindBichromatic:
		if pl.plan.Edge {
			return db.runEdgeBichromaticRNN(ec, pl.edge, pl.esites, pl.loc, pl.k, algo)
		}
		return db.runBichromaticRNN(ec, pl.node, pl.nsites, pl.qnode, pl.k, algo)
	case KindContinuous:
		if pl.plan.Edge {
			return db.runEdgeContinuousRNN(ec, pl.edge, pl.route, pl.k, algo)
		}
		return db.runContinuousRNN(ec, pl.node, pl.route, pl.k, algo)
	default: // KindKNN, validated by plan
		return db.runKNN(ec, pl)
	}
}

// runKNN executes the forward search; on a typed execution error the
// neighbors found so far ride along with it, like every other kind.
func (db *DB) runKNN(ec *exec.Ctx, pl *planned) (*Result, error) {
	s := db.searcher.Bound(ec)
	var out []core.PointDist
	var err error
	if pl.plan.Edge {
		out, err = s.UKNN(pl.edge.v, pl.loc.toLoc(), pl.k)
	} else {
		out, err = s.KNN(pl.node.v, toNodeIDs([]NodeID{pl.qnode})[0], pl.k)
	}
	if err != nil && !exec.IsExecErr(err) {
		return nil, err
	}
	return &Result{Neighbors: toNeighbors(out)}, err
}

// RunBatch executes a slice of declarative queries over a worker pool and
// reports per-query results (input order), the worker count used, and
// aggregate statistics. Entries are independent: each is planned and run as
// if through Run, so one batch may mix kinds, shapes and substrates.
//
// Batches are context-aware: cancel ctx (or let its deadline pass) and
// undispatched entries report a typed cancellation error without running;
// opt.FailFast promotes the first error to a batch-level cancellation;
// opt.PerQuery bounds every entry that does not carry its own embedded
// QueryOptions. The error return is reserved for batch-level admission
// failures (nil today); per-query errors land in their Results slots.
func (db *DB) RunBatch(ctx context.Context, queries []Query, opt *BatchOptions) (*BatchReport, error) {
	start := time.Now()
	out := make([]BatchResult, len(queries))
	workers := runBatch(ctx, len(queries), opt.workers(len(queries)), opt.failFast(), out, func(ctx context.Context, i int) {
		q := queries[i]
		if pq := opt.perQuery(); pq != nil && q.QueryOptions == (QueryOptions{}) {
			q.QueryOptions = *pq
		}
		out[i].Result, out[i].Err = db.Run(ctx, q)
	})
	rep := &BatchReport{Results: out, Workers: workers, Wall: time.Since(start)}
	for _, r := range out {
		if r.Err != nil {
			rep.Failed++
		} else {
			rep.Succeeded++
		}
		if r.Result != nil {
			rep.Work.add(r.Result.Stats)
		}
	}
	return rep, nil
}

// Stream executes one declarative query and yields each result member the
// moment the engine confirms it, instead of buffering the full answer:
// RkNN members arrive in confirmation order (not id order) while the
// expansion is still running; KindKNN neighbors arrive in ascending
// distance order. Breaking out of the loop cancels the underlying query
// within one expansion step.
//
// The final iteration reports a terminal error, if any, as (Hit{}, err) —
// including the typed execution errors after a deadline, cancellation or
// budget cut the stream short. A fully consumed stream with no error pair
// delivered exactly the members Run would have returned.
func (db *DB) Stream(ctx context.Context, q Query) iter.Seq2[Hit, error] {
	return func(yield func(Hit, error) bool) {
		pl, err := db.plan(q)
		if err != nil {
			yield(Hit{}, err)
			return
		}
		// A cancelable context guarantees a non-nil exec.Ctx, which is what
		// carries the member sink; canceling it is also how an abandoned
		// consumer stops the producer.
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ec, ecancel, err := db.newExec(sctx, &q.QueryOptions)
		if err != nil {
			yield(Hit{}, err)
			return
		}
		defer ecancel()

		hits := make(chan Hit, 64)
		ec.OnMember(func(p int32, d float64) {
			select {
			case hits <- Hit{P: PointID(p), Distance: d}:
			case <-sctx.Done():
			}
		})
		var rerr error
		go func() {
			defer close(hits)
			res, err := db.runPlanned(ec, &pl)
			if res != nil && pl.plan.Kind == KindKNN {
				// The forward search reuses the range-NN machinery, which
				// collects before sorting; its neighbors stream here, in
				// ascending distance order, once confirmed.
				for _, n := range res.Neighbors {
					ec.Emit(int32(n.P), n.Distance)
				}
			}
			rerr = err
		}()
		for h := range hits {
			if !yield(h, nil) {
				return
			}
		}
		// hits is closed: the producer is done and rerr is visible.
		if rerr != nil {
			yield(Hit{}, rerr)
		}
	}
}
