package graphrnn

import (
	"math/rand"

	"graphrnn/internal/gen"
)

// Synthetic dataset generators reproducing the structure of the paper's
// evaluation networks (Section 6); see DESIGN.md for the substitution
// rationale. All generators are deterministic for a fixed seed.

// CoauthorshipDataset is a DBLP-like coauthorship network: unit edge
// weights (degree of separation) and per-author, per-venue paper counts for
// ad-hoc predicates.
type CoauthorshipDataset struct {
	Graph *Graph
	// PaperCounts[n][v] is the number of papers of author n in venue v.
	PaperCounts [][]int
}

// AuthorsWithVenueCount returns the authors with exactly count papers in
// venue v (the ad-hoc predicate of Table 1).
func (c *CoauthorshipDataset) AuthorsWithVenueCount(v, count int) []NodeID {
	var out []NodeID
	for n, pc := range c.PaperCounts {
		if v < len(pc) && pc[v] == count {
			out = append(out, NodeID(n))
		}
	}
	return out
}

// GenerateCoauthorship builds a DBLP-like network. Zero targets default to
// the paper's cleaned DBLP scale (4,260 authors, ~13,199 edges, 4 venues).
func GenerateCoauthorship(seed int64, targetNodes, targetEdges, venues int) (*CoauthorshipDataset, error) {
	cfg := gen.DefaultCoauthorship(seed)
	if targetNodes > 0 {
		cfg.TargetNodes = targetNodes
	}
	if targetEdges > 0 {
		cfg.TargetEdges = targetEdges
	}
	if venues > 0 {
		cfg.Venues = venues
	}
	c, err := gen.NewCoauthorship(cfg)
	if err != nil {
		return nil, err
	}
	return &CoauthorshipDataset{Graph: &Graph{g: c.G}, PaperCounts: c.PaperCounts}, nil
}

// GenerateBrite builds a BRITE-like router topology: scale-free with the
// given average degree (the paper uses 4), random weights, low diameter.
func GenerateBrite(seed int64, nodes, avgDegree int) (*Graph, error) {
	g, err := gen.Brite(gen.BriteConfig{Seed: seed, Nodes: nodes, AvgDegree: avgDegree})
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// GenerateRoadNetwork builds a San-Francisco-like planar spatial network:
// coordinates in [0,10000]², Euclidean edge weights, |E|/|V| ≈ 1.27,
// cleaned to its largest connected component.
func GenerateRoadNetwork(seed int64, nodes int) (*Graph, error) {
	g, err := gen.RoadNetwork(gen.RoadConfig{Seed: seed, Nodes: nodes})
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// GenerateGrid builds a synthetic grid map with the given average degree
// (>= 4; larger degrees add random edges between nearby nodes, Fig 20).
func GenerateGrid(seed int64, nodes int, degree float64) (*Graph, error) {
	g, err := gen.Grid(gen.GridConfig{Seed: seed, Nodes: nodes, Degree: degree})
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// PlaceRandomNodePoints places count points on distinct uniformly random
// nodes (density D corresponds to count = D·|V|, Section 6).
func (db *DB) PlaceRandomNodePoints(seed int64, count int) (*NodePoints, error) {
	rng := rand.New(rand.NewSource(seed))
	s, err := gen.PlaceNodePoints(rng, db.store.NumNodes(), count)
	if err != nil {
		return nil, err
	}
	return &NodePoints{db: db, s: s}, nil
}

// PlaceRandomEdgePoints distributes count points uniformly over random
// edges at uniform offsets (the unrestricted workloads of Section 6.2).
func (db *DB) PlaceRandomEdgePoints(seed int64, count int) (*EdgePoints, error) {
	rng := rand.New(rand.NewSource(seed))
	s, err := gen.PlaceEdgePoints(rng, gen.Edges(db.graph.g), count)
	if err != nil {
		return nil, err
	}
	return &EdgePoints{db: db, s: s}, nil
}

// RandomWalkRoute builds a route for continuous queries: a random walk of
// at most size nodes without repetition (Fig 19's workload).
func (db *DB) RandomWalkRoute(seed int64, size int) []NodeID {
	rng := rand.New(rand.NewSource(seed))
	route := gen.RandomWalkRoute(rng, db.graph.g, size)
	out := make([]NodeID, len(route))
	for i, n := range route {
		out[i] = NodeID(n)
	}
	return out
}
