package graphrnn_test

import (
	"math"
	"testing"

	"graphrnn"
)

func buildLineGraph(t *testing.T, n int) *graphrnn.Graph {
	t.Helper()
	gb := graphrnn.NewGraphBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := gb.AddEdge(graphrnn.NodeID(i), graphrnn.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicAPIQuickstart(t *testing.T) {
	g := buildLineGraph(t, 5)
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := db.NewNodePoints()
	p0, _ := ps.Place(0)
	p4, _ := ps.Place(4)
	// Query at node 1: p0 (distance 1, its NN is p4 at 4) is an RNN;
	// p4 (distance 3 vs its NN p0 at 4) also qualifies.
	for _, algo := range []graphrnn.Algorithm{
		graphrnn.Eager(), graphrnn.Lazy(), graphrnn.LazyEP(), graphrnn.BruteForce(),
	} {
		res, err := db.RNN(ps, 1, 1, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.Points) != 2 || res.Points[0] != p0 || res.Points[1] != p4 {
			t.Fatalf("%v: RNN = %v, want [%d %d]", algo, res.Points, p0, p4)
		}
	}
}

func TestPublicAPIAllAlgorithmsAgree(t *testing.T) {
	g, err := graphrnn.GenerateGrid(11, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(12, 40)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	algos := []graphrnn.Algorithm{
		graphrnn.Eager(), graphrnn.Lazy(), graphrnn.LazyEP(), graphrnn.EagerM(mat), graphrnn.BruteForce(),
	}
	queries := ps.Points()[:8]
	for _, k := range []int{1, 2, 4} {
		for _, qp := range queries {
			qnode, _ := ps.NodeOf(qp)
			view := ps.Excluding(qp)
			var want *graphrnn.Result
			for i, algo := range algos {
				got, err := db.RNN(view, qnode, k, algo)
				if err != nil {
					t.Fatalf("%v: %v", algo, err)
				}
				if i == 0 {
					want = got
					continue
				}
				if len(got.Points) != len(want.Points) {
					t.Fatalf("k=%d q=%d: %v = %v, eager = %v", k, qnode, algo, got.Points, want.Points)
				}
				for j := range got.Points {
					if got.Points[j] != want.Points[j] {
						t.Fatalf("k=%d q=%d: %v = %v, eager = %v", k, qnode, algo, got.Points, want.Points)
					}
				}
			}
		}
	}
	// Disk-backed queries must have produced I/O.
	if db.IOStats().Reads == 0 {
		t.Fatal("disk-backed DB recorded no page reads")
	}
}

func TestPublicAPIEdgeQueries(t *testing.T) {
	g, err := graphrnn.GenerateRoadNetwork(13, 900)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomEdgePoints(14, 50)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeEdgePoints(ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	qp := ps.Points()[0]
	qloc, _ := ps.LocationOf(qp)
	view := ps.Excluding(qp)
	want, err := db.EdgeRNN(view, qloc, 2, graphrnn.BruteForce())
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []graphrnn.Algorithm{
		graphrnn.Eager(), graphrnn.Lazy(), graphrnn.LazyEP(), graphrnn.EagerM(mat),
	} {
		got, err := db.EdgeRNN(view, qloc, 2, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("%v = %v, brute = %v", algo, got.Points, want.Points)
		}
	}
	// Continuous over a route.
	route := db.RandomWalkRoute(15, 8)
	if _, err := db.EdgeContinuousRNN(ps, route, 1, graphrnn.Eager()); err != nil {
		t.Fatal(err)
	}
	// Distance sanity.
	d, err := db.Distance(graphrnn.NodeLocation(0), graphrnn.NodeLocation(0))
	if err != nil || d != 0 {
		t.Fatalf("Distance(self) = %v, %v", d, err)
	}
}

func TestPublicAPIBichromatic(t *testing.T) {
	g := buildLineGraph(t, 7)
	db, _ := graphrnn.Open(g, nil)
	blocks := db.NewNodePoints()
	for _, n := range []graphrnn.NodeID{1, 2, 5} {
		if _, err := blocks.Place(n); err != nil {
			t.Fatal(err)
		}
	}
	rivals := db.NewNodePoints()
	if _, err := rivals.Place(6); err != nil {
		t.Fatal(err)
	}
	res, err := db.BichromaticRNN(blocks, rivals, 0, 1, graphrnn.Eager())
	if err != nil {
		t.Fatal(err)
	}
	// Blocks at 1 and 2 are closer to node 0 than to the rival at 6; the
	// block at 5 is closer to the rival.
	if len(res.Points) != 2 {
		t.Fatalf("bRNN = %v, want 2 blocks", res.Points)
	}
}

func TestPublicAPIMaintenance(t *testing.T) {
	g, err := graphrnn.GenerateGrid(16, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := graphrnn.Open(g, nil)
	ps, err := db.PlaceRandomNodePoints(17, 10)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insert at a free node.
	var free graphrnn.NodeID = -1
	for n := 0; n < g.NumNodes(); n++ {
		if _, taken := ps.PointAt(graphrnn.NodeID(n)); !taken {
			free = graphrnn.NodeID(n)
			break
		}
	}
	p, st, err := mat.InsertNode(free)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesExpanded == 0 {
		t.Fatal("insert expanded no nodes")
	}
	// Queries after maintenance agree with brute force.
	q := ps.Points()[0]
	qnode, _ := ps.NodeOf(q)
	view := ps.Excluding(q)
	want, _ := db.RNN(view, qnode, 2, graphrnn.BruteForce())
	got, err := db.RNN(view, qnode, 2, graphrnn.EagerM(mat))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("after insert: eagerM = %v, brute = %v", got.Points, want.Points)
	}
	// Delete it again.
	if _, err := mat.DeletePoint(p); err != nil {
		t.Fatal(err)
	}
	got, _ = db.RNN(view, qnode, 2, graphrnn.EagerM(mat))
	want, _ = db.RNN(view, qnode, 2, graphrnn.BruteForce())
	if len(got.Points) != len(want.Points) {
		t.Fatalf("after delete: eagerM = %v, brute = %v", got.Points, want.Points)
	}
	if mat.MaxK() != 2 {
		t.Fatalf("MaxK = %d", mat.MaxK())
	}
	if err := mat.Flush(); err != nil {
		t.Fatal(err)
	}
	if mat.IOStats().Writes == 0 {
		t.Fatal("maintenance flushed no writes")
	}
}

func TestPublicAPIKNN(t *testing.T) {
	g := buildLineGraph(t, 6) // 0-1-2-3-4-5, unit weights
	db, _ := graphrnn.Open(g, nil)
	ps := db.NewNodePoints()
	p0, _ := ps.Place(0)
	p5, _ := ps.Place(5)
	nn, err := db.KNN(ps, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 || nn[0].P != p0 || nn[0].Distance != 1 || nn[1].P != p5 || nn[1].Distance != 4 {
		t.Fatalf("KNN = %+v", nn)
	}
	// Edge-resident KNN.
	eps := db.NewEdgePoints()
	a, _ := eps.Place(2, 3, 0.25)
	enn, err := db.EdgeKNN(eps, graphrnn.EdgeLocation(2, 3, 0.75), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(enn) != 1 || enn[0].P != a || enn[0].Distance != 0.5 {
		t.Fatalf("EdgeKNN = %+v", enn)
	}
	if _, err := db.KNN(ps, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestPublicAPILayouts(t *testing.T) {
	g, err := graphrnn.GenerateGrid(21, 2500, 4)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	random, err := graphrnn.OpenWithLayout(g, &graphrnn.Options{DiskBacked: true, BufferPages: 4}, graphrnn.RandomLayout(5))
	if err != nil {
		t.Fatal(err)
	}
	psB, _ := bfs.PlaceRandomNodePoints(6, 25)
	psR, _ := random.PlaceRandomNodePoints(6, 25)
	qp := psB.Points()[0]
	qnode, _ := psB.NodeOf(qp)
	rb, err := bfs.RNN(psB.Excluding(qp), qnode, 1, graphrnn.Eager())
	if err != nil {
		t.Fatal(err)
	}
	rr, err := random.RNN(psR.Excluding(qp), qnode, 1, graphrnn.Eager())
	if err != nil {
		t.Fatal(err)
	}
	// Same answers regardless of layout...
	if len(rb.Points) != len(rr.Points) {
		t.Fatalf("layouts disagree: %v vs %v", rb.Points, rr.Points)
	}
	// ...but the random layout faults at least as much on a tiny buffer.
	if random.IOStats().Reads < bfs.IOStats().Reads {
		t.Fatalf("random layout faulted less (%d) than BFS (%d)", random.IOStats().Reads, bfs.IOStats().Reads)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	g := buildLineGraph(t, 3)
	db, _ := graphrnn.Open(g, nil)
	ps := db.NewNodePoints()
	if _, err := db.RNN(ps, 0, 0, graphrnn.Eager()); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := db.RNN(ps, 9, 1, graphrnn.Lazy()); err == nil {
		t.Fatal("bad node accepted")
	}
	if _, err := db.RNN(ps, 0, 1, graphrnn.EagerM(nil)); err == nil {
		t.Fatal("EagerM(nil) accepted")
	}
	eps := db.NewEdgePoints()
	if _, err := eps.Place(0, 2, 0.5); err == nil {
		t.Fatal("point on missing edge accepted")
	}
	if _, err := eps.Place(0, 1, 5); err == nil {
		t.Fatal("offset beyond weight accepted")
	}
	if _, err := graphrnn.Open(nil, nil); err == nil {
		t.Fatal("Open(nil) accepted")
	}
	if math.IsNaN(0) {
		t.Fatal("unreachable")
	}
}
