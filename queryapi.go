package graphrnn

import (
	"fmt"
	"time"
)

// This file is the declarative half of the unified query API: one Query
// value describes any request the system answers — monochromatic,
// bichromatic or continuous RkNN and forward KNN, node- or edge-resident,
// bounded or not — and the engine surface (Run, RunBatch, Stream in
// engine.go) executes it through the planner (plan.go). The per-shape,
// per-algorithm entry points that used to make up the public surface are
// deprecated shims over this one.

// Kind enumerates the query families of the paper.
type Kind int

const (
	// KindRNN is the monochromatic reverse k-nearest-neighbor query: the
	// points that have the target among their k nearest neighbors (§3).
	KindRNN Kind = iota
	// KindBichromatic is bRkNN over candidates (Points) and sites (Sites):
	// the candidates with fewer than k sites strictly closer than the
	// target (§5.3).
	KindBichromatic
	// KindContinuous is cRkNN over Route: the union of the RkNN sets of
	// every route node, computed in one traversal (§5.1).
	KindContinuous
	// KindKNN is the forward k-nearest-neighbor search (§3.1); the answer
	// is Result.Neighbors.
	KindKNN
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRNN:
		return "rnn"
	case KindBichromatic:
		return "bichromatic"
	case KindContinuous:
		return "continuous"
	case KindKNN:
		return "knn"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// PointSet is a reference to a point set a Query can name: *NodePoints or
// NodePointsView (node-resident), *EdgePoints, *PagedEdgePoints or
// EdgePointsView (edge-resident). The residency of Points decides whether
// the query runs on the restricted or the unrestricted network model.
type PointSet interface{ pointSet() }

func (ps *NodePoints) pointSet()      {}
func (v NodePointsView) pointSet()    {}
func (ps *EdgePoints) pointSet()      {}
func (ps *PagedEdgePoints) pointSet() {}
func (v EdgePointsView) pointSet()    {}

// Query is the declarative description of one request: what to compute
// (Kind, K), where (Target or Route), over which point sets (Points,
// Sites), under which execution bounds (the embedded QueryOptions) and —
// optionally — how (Algorithm). Build it as a literal and pass it to
// DB.Run, DB.RunBatch or DB.Stream:
//
//	res, err := db.Run(ctx, graphrnn.Query{
//	    Kind:   graphrnn.KindRNN,
//	    Target: graphrnn.NodeLocation(q),
//	    K:      2,
//	    Points: ps,
//	})
//
// The zero Algorithm lets the planner pick the substrate (DB.Plan documents
// the policy); Result.Plan echoes the decision.
type Query struct {
	// Kind selects the query family. The zero value is KindRNN.
	Kind Kind
	// Target is the query location: a node (NodeLocation) or a point on an
	// edge (EdgeLocation). Edge-interior targets require an edge-resident
	// Points set; node-resident sets take node targets. Ignored by
	// KindContinuous, which queries along Route.
	Target Location
	// Route is the node route of a KindContinuous query.
	Route []NodeID
	// K is the query depth (k >= 1).
	K int
	// Points is the queried point set: the data set for KindRNN,
	// KindContinuous and KindKNN, the candidate set for KindBichromatic.
	Points PointSet
	// Sites is the site (competitor) set of a KindBichromatic query; it
	// must match the residency of Points. Nil for every other Kind.
	Sites PointSet
	// Algorithm hints the processing strategy. The zero value (Auto) lets
	// the planner choose; a hint the planner cannot run on this query's
	// shape falls back to a compatible substrate (Plan.Fallback reports
	// it) unless Strict is set.
	Algorithm Algorithm
	// Strict turns an incompatible Algorithm into an error instead of a
	// planner fallback — the semantics of the deprecated per-algorithm
	// entry points, which set it.
	Strict bool
	// QueryOptions bounds the query (per-query deadline, work budget). The
	// zero value applies only the Run context's own cancellation/deadline.
	QueryOptions
}

// Hit is one streamed result member (see DB.Stream).
type Hit struct {
	// P is the confirmed member.
	P PointID
	// Distance is the network distance of the hit for KindKNN streams
	// (ascending); RkNN kinds report 0 — membership, not distance, is the
	// answer there.
	Distance float64
}

// BatchReport is the answer of one RunBatch call.
type BatchReport struct {
	// Results holds one entry per query, in input order. On an
	// execution-control error (cancellation, deadline, budget) an entry
	// carries both the partial Result and the error.
	Results []BatchResult
	// Workers is the number of worker goroutines actually used
	// (Parallelism capped by the batch size).
	Workers int
	// Succeeded and Failed count entries without and with an error.
	Succeeded int
	Failed    int
	// Work aggregates the per-query work statistics across all entries
	// that produced a result, partial answers included.
	Work Stats
	// Wall is the wall-clock time of the whole batch.
	Wall time.Duration
}
