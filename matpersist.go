package graphrnn

import (
	"fmt"
	"os"

	"graphrnn/internal/core"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// This file is the durability half of materialization maintenance: a
// materialization can be persisted into a single paged file (SaveTo) and
// served back in a later process (OpenMaterialization) without paying the
// all-NN build again. A reopened materialization runs its maintenance
// operations through an on-disk write-ahead journal (<path>.journal):
// every operation stages the before-image of each list it touches in the
// journal, commits with a single header-page flip, and an operation
// interrupted by a crash is rolled back on the next open — the lists and
// the tracked point set always reopen in the state of the last committed
// operation.

// RepairState reports whether a materialization carries an uncommitted
// maintenance operation.
type RepairState int

const (
	// RepairClean: no maintenance operation is pending; the lists match
	// the tracked point set exactly.
	RepairClean RepairState = iota
	// RepairPendingRollback: an abandoned operation could not be rolled
	// back (its inline rollback hit an I/O error, or the process crashed
	// mid-repair and the file has not been reopened). Call Recover — or
	// run any maintenance operation, which recovers first — before
	// trusting query results.
	RepairPendingRollback
)

func (s RepairState) String() string {
	if s == RepairClean {
		return "clean"
	}
	return "pending-rollback"
}

// RepairState returns the materialization's journal state. Abandoned
// operations roll back inline, so the state is RepairClean in every
// ordinary history; RepairPendingRollback survives only a failed rollback.
func (m *Materialization) RepairState() RepairState {
	if m.m.RepairPending() || m.pending != nil {
		return RepairPendingRollback
	}
	return RepairClean
}

// Recover rolls back an uncommitted maintenance operation, restoring the
// lists (and, for an operation abandoned in this process, the tracked
// point set) to the state of the last committed operation. It reports
// whether an operation was pending. Recover is idempotent and safe to call
// at any time maintenance is quiescent; maintenance operations call it
// implicitly when they find a pending operation.
func (m *Materialization) Recover() (bool, error) {
	if m.RepairState() == RepairClean {
		return false, nil
	}
	if err := m.rollbackPending(); err != nil {
		return true, err
	}
	return true, nil
}

// SaveTo persists the materialization — lists and the tracked point set —
// into a fresh page file at path, so a later process can serve it through
// OpenMaterialization. Like the hub-label SaveTo it is a snapshot: the
// in-memory materialization keeps running independently afterwards, and
// only a materialization built in this process can be saved (a reopened
// one is already persisted, and committed maintenance updates its file in
// place).
func (m *Materialization) SaveTo(path string) error {
	if m.file != nil {
		return fmt.Errorf("graphrnn: materialization was opened from a file; committed maintenance already persists there")
	}
	if m.RepairState() != RepairClean {
		return fmt.Errorf("graphrnn: unrecovered maintenance operation pending; call Recover before saving")
	}
	kind, pts := m.snapshotPoints()
	f, err := storage.CreateOSFile(path, m.m.Buffer().File().PageSize())
	if err != nil {
		return err
	}
	if err := core.MatSave(m.m, kind, pts, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// snapshotPoints encodes the tracked point set as the dense
// point-id -> location table the file persists.
func (m *Materialization) snapshotPoints() (byte, []core.PointRecord) {
	if m.node != nil {
		tab := m.node.s.Table()
		pts := make([]core.PointRecord, len(tab))
		for i, n := range tab {
			if n < 0 {
				pts[i] = core.PointAbsent
			} else {
				pts[i] = core.PointRecord{U: n, V: n}
			}
		}
		return core.MatKindNode, pts
	}
	tab := m.edge.s.Table()
	pts := make([]core.PointRecord, len(tab))
	for i, loc := range tab {
		if loc.U < 0 {
			pts[i] = core.PointAbsent
		} else {
			pts[i] = core.PointRecord{U: loc.U, V: loc.V, Pos: loc.Pos}
		}
	}
	return core.MatKindEdge, pts
}

// OpenMaterialization reopens a materialization previously persisted at
// path — the restart path: no all-NN build runs, list pages fault in
// through the shared buffer pool on demand, and the tracked point set is
// reconstructed from the file (reach it through NodePoints / EdgePoints).
// An uncommitted maintenance operation left by a crash is rolled back from
// the write-ahead journal at <path>.journal before the lists are served.
// Maintenance on the reopened materialization is durable: each committed
// operation updates the file in place. Like MaterializeNodePoints, the
// reopened materialization is attached to the planner.
func (db *DB) OpenMaterialization(path string, opt *MatOptions) (*Materialization, error) {
	_, buffer := opt.defaults()
	// The page size lives in the file header, so reopening needs no
	// recollection of the build-time options.
	pageSize, err := core.MatFilePageSize(path)
	if err != nil {
		return nil, err
	}
	file, err := storage.OpenOSFile(path, pageSize)
	if err != nil {
		return nil, err
	}
	jpath := path + ".journal"
	var jfile storage.PagedFile
	if _, statErr := os.Stat(jpath); statErr == nil {
		jfile, err = storage.OpenOSFile(jpath, pageSize)
	} else {
		jfile, err = storage.CreateOSFile(jpath, pageSize)
	}
	if err != nil {
		file.Close()
		return nil, err
	}
	fail := func(err error) (*Materialization, error) {
		file.Close()
		jfile.Close()
		return nil, err
	}
	bm := db.pool.attach("mat", file, buffer)
	cm, kind, pts, err := core.MatOpen(file, bm, jfile)
	if err != nil {
		_ = bm.Detach()
		return fail(err)
	}
	if opt != nil && opt.Durability == DurabilityFsync {
		cm.SetDurable(true)
	}
	if cm.NumNodes() != db.store.NumNodes() {
		_ = bm.Detach()
		return fail(fmt.Errorf("graphrnn: materialization file covers %d nodes, graph has %d",
			cm.NumNodes(), db.store.NumNodes()))
	}
	mat := &Materialization{db: db, m: cm, file: file, jfile: jfile}
	switch kind {
	case core.MatKindNode:
		nodes := make([]graph.NodeID, len(pts))
		for i, r := range pts {
			if r.U < 0 {
				nodes[i] = -1
			} else {
				nodes[i] = r.U
			}
		}
		ns, err := points.RestoreNodeSet(db.store.NumNodes(), nodes)
		if err != nil {
			_ = bm.Detach()
			return fail(err)
		}
		mat.node = &NodePoints{db: db, s: ns}
	case core.MatKindEdge:
		eps := make([]points.EdgePoint, len(pts))
		for i, r := range pts {
			if r.U < 0 {
				eps[i] = points.EdgePoint{U: -1}
			} else {
				if _, ok := db.graph.EdgeWeight(NodeID(r.U), NodeID(r.V)); !ok {
					_ = bm.Detach()
					return fail(fmt.Errorf("graphrnn: persisted point %d lies on edge (%d,%d): %w",
						i, r.U, r.V, ErrMissingEdge))
				}
				eps[i] = points.EdgePoint{U: r.U, V: r.V, Pos: r.Pos}
			}
		}
		es, err := points.RestoreEdgeSet(eps)
		if err != nil {
			_ = bm.Detach()
			return fail(err)
		}
		mat.edge = &EdgePoints{db: db, s: es}
	default:
		_ = bm.Detach()
		return fail(fmt.Errorf("graphrnn: unknown point-set kind %d in %q", kind, path))
	}
	db.AttachMaterialization(mat)
	return mat, nil
}
