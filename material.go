package graphrnn

import (
	"context"
	"fmt"

	"graphrnn/internal/core"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// Materialization holds the per-node K-NN lists of Section 4.1 in a paged
// file read through the DB's shared buffer pool (tenant "mat"): the
// substrate of the eager-M algorithm. Lists support k-values up to MaxK
// and are maintained incrementally as points appear and disappear
// (Figs 8-11).
type Materialization struct {
	db   *DB
	m    *core.Materialized
	node *NodePoints
	edge *EdgePoints
}

// MatOptions configures a materialization.
type MatOptions struct {
	// PageSize of the list file (default 4096).
	PageSize int
	// BufferPages is the list file's frame quota within the DB's shared
	// buffer pool (default 64). On a DB-owned pool the capacity grows by
	// this amount, matching the former dedicated list buffer.
	BufferPages int
}

func (o *MatOptions) defaults() (int, int) {
	pageSize, buffer := storage.DefaultPageSize, 64
	if o != nil {
		if o.PageSize > 0 {
			pageSize = o.PageSize
		}
		if o.BufferPages > 0 {
			buffer = o.BufferPages
		}
	}
	return pageSize, buffer
}

// MaterializeNodePoints builds the K-NN lists of every node over a
// node-resident point set with one all-NN expansion. Queries through the
// returned materialization support k <= maxK. The materialization tracks
// ps: mutate the set through InsertNode / DeletePoint to keep the lists
// consistent. It is attached to the planner (last built wins; see
// AttachMaterialization), so auto-planned queries over ps use eager-M when
// no hub-label index outranks it.
func (db *DB) MaterializeNodePoints(ps *NodePoints, maxK int, opt *MatOptions) (*Materialization, error) {
	m, err := db.materialize(core.SeedsRestricted(ps.s), maxK, opt)
	if err != nil {
		return nil, err
	}
	mat := &Materialization{db: db, m: m, node: ps}
	db.AttachMaterialization(mat)
	return mat, nil
}

// MaterializeEdgePoints builds the K-NN lists over an edge-resident point
// set (Section 5.2: endpoint lists are seeded with both direct offsets).
func (db *DB) MaterializeEdgePoints(ps *EdgePoints, maxK int, opt *MatOptions) (*Materialization, error) {
	seeds, err := seedsForEdgeSet(db, ps)
	if err != nil {
		return nil, err
	}
	m, err := db.materialize(seeds, maxK, opt)
	if err != nil {
		return nil, err
	}
	mat := &Materialization{db: db, m: m, edge: ps}
	db.AttachMaterialization(mat)
	return mat, nil
}

// materialize packs the lists into a fresh memory page file attached to
// the DB's shared buffer pool as the "mat" tenant.
func (db *DB) materialize(seeds []core.MatSeed, maxK int, opt *MatOptions) (*core.Materialized, error) {
	pageSize, buffer := opt.defaults()
	file := storage.NewMemFile(pageSize)
	bm := db.pool.attach("mat", file, buffer)
	m, err := db.searcher.MatBuildBuffer(seeds, maxK, file, bm, nil)
	if err != nil {
		_ = bm.Detach()
		return nil, err
	}
	return m, nil
}

func seedsForEdgeSet(db *DB, ps *EdgePoints) ([]core.MatSeed, error) {
	return core.SeedsUnrestricted(ps.s, db.store)
}

// MaxK returns the largest query k the lists support.
func (m *Materialization) MaxK() int { return m.m.MaxK() }

// IOStats returns the list-file traffic.
func (m *Materialization) IOStats() IOStats {
	s := m.m.Stats()
	return IOStats{Reads: s.Reads, Hits: s.Hits, Writes: s.Writes}
}

// ResetIOStats zeroes the list-file counters.
func (m *Materialization) ResetIOStats() { m.m.ResetStats() }

// Flush writes dirty list pages back to the file.
func (m *Materialization) Flush() error { return m.m.Flush() }

// Close detaches the materialization from the planner (when it is the
// attached one) and its list pages from the shared buffer pool (flushing
// dirty ones). Queries through this materialization must not be in flight
// and the materialization must not be used afterwards.
func (m *Materialization) Close() error {
	m.db.planMat.CompareAndSwap(m, nil)
	return m.m.Buffer().Detach()
}

// InsertNode places a new point on node n of the tracked node-resident set
// and updates the affected lists (the insertion algorithm of Section 4.1).
func (m *Materialization) InsertNode(n NodeID) (PointID, Stats, error) {
	return m.insertNode(m.db.searcher, n)
}

// InsertNodeContext is InsertNode under a context. CAUTION: a maintenance
// operation abandoned mid-flight (typed exec error) leaves the lists
// partially repaired — the materialization must be rebuilt before further
// queries use it. Deadlines here are a guardrail for operational
// emergencies, not a routine control.
func (m *Materialization) InsertNodeContext(ctx context.Context, n NodeID, opt *QueryOptions) (PointID, Stats, error) {
	ec, cancel, err := m.db.newExec(ctx, opt)
	if err != nil {
		return -1, Stats{}, err
	}
	defer cancel()
	return m.insertNode(m.db.searcher.Bound(ec), n)
}

func (m *Materialization) insertNode(s *core.Searcher, n NodeID) (PointID, Stats, error) {
	if m.node == nil {
		return -1, Stats{}, fmt.Errorf("graphrnn: materialization does not track a node point set")
	}
	p, err := m.node.Place(n)
	if err != nil {
		return -1, Stats{}, err
	}
	st, err := s.MatInsert(m.m, []core.MatSeed{{Node: graph.NodeID(n), P: points.PointID(p), D: 0}})
	return p, statsOf(st), err
}

// InsertEdge places a new point on edge (u,v) of the tracked edge-resident
// set and updates the affected lists.
func (m *Materialization) InsertEdge(u, v NodeID, pos float64) (PointID, Stats, error) {
	return m.insertEdge(m.db.searcher, u, v, pos)
}

// InsertEdgeContext is InsertEdge under a context; see InsertNodeContext
// for the partial-repair caveat.
func (m *Materialization) InsertEdgeContext(ctx context.Context, u, v NodeID, pos float64, opt *QueryOptions) (PointID, Stats, error) {
	ec, cancel, err := m.db.newExec(ctx, opt)
	if err != nil {
		return -1, Stats{}, err
	}
	defer cancel()
	return m.insertEdge(m.db.searcher.Bound(ec), u, v, pos)
}

func (m *Materialization) insertEdge(s *core.Searcher, u, v NodeID, pos float64) (PointID, Stats, error) {
	if m.edge == nil {
		return -1, Stats{}, fmt.Errorf("graphrnn: materialization does not track an edge point set")
	}
	w, ok := m.db.graph.EdgeWeight(u, v)
	if !ok {
		return -1, Stats{}, fmt.Errorf("graphrnn: no edge (%d,%d)", u, v)
	}
	p, err := m.edge.Place(u, v, pos)
	if err != nil {
		return -1, Stats{}, err
	}
	loc, _ := m.edge.LocationOf(p)
	seeds := []core.MatSeed{
		{Node: graph.NodeID(loc.U), P: points.PointID(p), D: loc.Pos},
		{Node: graph.NodeID(loc.V), P: points.PointID(p), D: w - loc.Pos},
	}
	st, err := s.MatInsert(m.m, seeds)
	return p, statsOf(st), err
}

// DeletePointContext is DeletePoint under a context; see InsertNodeContext
// for the partial-repair caveat.
func (m *Materialization) DeletePointContext(ctx context.Context, p PointID, opt *QueryOptions) (Stats, error) {
	ec, cancel, err := m.db.newExec(ctx, opt)
	if err != nil {
		return Stats{}, err
	}
	defer cancel()
	return m.deletePoint(m.db.searcher.Bound(ec), p)
}

// DeletePoint removes point p from the tracked set and repairs the affected
// lists with the two-step border-node algorithm (Fig 10).
func (m *Materialization) DeletePoint(p PointID) (Stats, error) {
	return m.deletePoint(m.db.searcher, p)
}

func (m *Materialization) deletePoint(s *core.Searcher, p PointID) (Stats, error) {
	pid := points.PointID(p)
	var seeds []core.MatSeed
	switch {
	case m.node != nil:
		n, ok := m.node.NodeOf(p)
		if !ok {
			return Stats{}, fmt.Errorf("graphrnn: point %d does not exist", p)
		}
		seeds = []core.MatSeed{{Node: graph.NodeID(n), P: pid, D: 0}}
		if err := m.node.Delete(p); err != nil {
			return Stats{}, err
		}
	case m.edge != nil:
		loc, ok := m.edge.LocationOf(p)
		if !ok {
			return Stats{}, fmt.Errorf("graphrnn: point %d does not exist", p)
		}
		w, _ := m.db.graph.EdgeWeight(loc.U, loc.V)
		seeds = []core.MatSeed{
			{Node: graph.NodeID(loc.U), P: pid, D: loc.Pos},
			{Node: graph.NodeID(loc.V), P: pid, D: w - loc.Pos},
		}
		if err := m.edge.Delete(p); err != nil {
			return Stats{}, err
		}
	default:
		return Stats{}, fmt.Errorf("graphrnn: materialization tracks no point set")
	}
	st, err := s.MatDelete(m.m, pid, seeds)
	return statsOf(st), err
}

func statsOf(st core.Stats) Stats {
	return Stats{
		NodesExpanded: st.NodesExpanded,
		NodesScanned:  st.NodesScanned,
		RangeNN:       st.RangeNN,
		Verifications: st.Verifications,
		MatReads:      st.MatReads,
		LabelReads:    st.LabelReads,
		LabelEntries:  st.LabelEntries,
		HeapPushes:    st.HeapPushes,
		HeapPops:      st.HeapPops,
	}
}
