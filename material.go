package graphrnn

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"graphrnn/internal/core"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// Materialization holds the per-node K-NN lists of Section 4.1 in a paged
// file read through the DB's shared buffer pool (tenant "mat"): the
// substrate of the eager-M algorithm. Lists support k-values up to MaxK
// and are maintained incrementally as points appear and disappear
// (Figs 8-11).
//
// Every maintenance operation (InsertNode, InsertEdge, DeletePoint and
// their *Context variants) is atomic: the repair runs inside a journaled
// operation that records the before-image of every list it touches, and an
// operation abandoned for any reason — cancellation, deadline, budget
// exhaustion, an I/O error — is rolled back, leaving the lists and the
// tracked point set bit-identical to the pre-operation state. See
// RepairState / Recover for the rare case where the rollback itself cannot
// complete, and SaveTo / OpenMaterialization for persistence with crash
// recovery.
type Materialization struct {
	//lint:ignore vetrnn/tenantclose planner back-pointer (Close only detaches from it); the caller owns the DB
	db   *DB
	m    *core.Materialized
	node *NodePoints
	edge *EdgePoints

	// file and jfile are the backing page files of a materialization
	// reopened from disk (nil for the in-memory default).
	file  storage.PagedFile
	jfile storage.PagedFile

	// pending describes the point-set half of an uncommitted maintenance
	// operation, so Recover can undo it when the inline rollback failed.
	pending *matPendingOp
	// testCrash makes an abandoned operation skip its rollback, leaving
	// the journal uncommitted — the simulated-crash seam of the recovery
	// tests. Never set outside tests.
	testCrash bool
}

// matPendingOp is the point-set mutation of one maintenance operation:
// what Recover must undo if the operation does not commit.
type matPendingOp struct {
	insert bool
	p      PointID
	node   NodeID   // delete undo, node-resident sets
	loc    Location // delete undo, edge-resident sets
}

// Durability selects how hard a file-backed materialization pushes its
// maintenance writes toward stable storage. It only matters for
// materializations reopened with OpenMaterialization; the in-memory
// default has no disk to sync.
type Durability int

const (
	// DurabilityWriteOrder (the default) relies on write ordering alone:
	// the journal record reaches its file before the list page it covers,
	// and the header flip is a single page write. A process crash is always
	// recoverable; an OS crash or power loss may lose or reorder writes
	// still in the page cache.
	DurabilityWriteOrder Durability = iota
	// DurabilityFsync additionally syncs the journal file on every record
	// append and the materialization file on every commit flip, so a
	// committed operation survives power loss. Maintenance pays one fsync
	// per journaled record plus one per operation.
	DurabilityFsync
)

// MatOptions configures a materialization.
type MatOptions struct {
	// PageSize of the list file (default 4096).
	PageSize int
	// BufferPages is the list file's frame quota within the DB's shared
	// buffer pool (default 64). On a DB-owned pool the capacity grows by
	// this amount, matching the former dedicated list buffer.
	BufferPages int
	// Durability of file-backed maintenance (OpenMaterialization and
	// Path-persisted builds); default DurabilityWriteOrder.
	Durability Durability
	// Path stores the built lists on disk at this location, matching the
	// hub-label option of the same name: the all-NN build runs in memory,
	// the result is persisted to path, and the returned materialization
	// serves from the file with journaled, durable maintenance — exactly
	// as if it had been saved with SaveTo and reopened with
	// OpenMaterialization, except it keeps tracking the point set the
	// build was given. Empty keeps the lists in a memory-backed file.
	Path string
}

func (o *MatOptions) defaults() (int, int) {
	pageSize, buffer := storage.DefaultPageSize, 64
	if o != nil {
		if o.PageSize > 0 {
			pageSize = o.PageSize
		}
		if o.BufferPages > 0 {
			buffer = o.BufferPages
		}
	}
	return pageSize, buffer
}

// MaterializeNodePoints builds the K-NN lists of every node over a
// node-resident point set with one all-NN expansion. Queries through the
// returned materialization support k <= maxK. The materialization tracks
// ps: mutate the set through InsertNode / DeletePoint to keep the lists
// consistent. It is attached to the planner (last built wins; see
// AttachMaterialization), so auto-planned queries over ps use eager-M when
// no hub-label index outranks it.
func (db *DB) MaterializeNodePoints(ps *NodePoints, maxK int, opt *MatOptions) (*Materialization, error) {
	m, err := db.materialize(core.SeedsRestricted(ps.s), maxK, opt)
	if err != nil {
		return nil, err
	}
	mat := &Materialization{db: db, m: m, node: ps}
	if opt != nil && opt.Path != "" {
		persisted, err := mat.persistBuild(opt)
		if err != nil {
			return nil, err
		}
		persisted.node = ps
		return persisted, nil
	}
	db.AttachMaterialization(mat)
	return mat, nil
}

// MaterializeEdgePoints builds the K-NN lists over an edge-resident point
// set (Section 5.2: endpoint lists are seeded with both direct offsets).
func (db *DB) MaterializeEdgePoints(ps *EdgePoints, maxK int, opt *MatOptions) (*Materialization, error) {
	seeds, err := seedsForEdgeSet(db, ps)
	if err != nil {
		return nil, err
	}
	m, err := db.materialize(seeds, maxK, opt)
	if err != nil {
		return nil, err
	}
	mat := &Materialization{db: db, m: m, edge: ps}
	if opt != nil && opt.Path != "" {
		persisted, err := mat.persistBuild(opt)
		if err != nil {
			return nil, err
		}
		persisted.edge = ps
		return persisted, nil
	}
	db.AttachMaterialization(mat)
	return mat, nil
}

// persistBuild converts a freshly built in-memory materialization into
// the file-backed form MatOptions.Path asks for: snapshot to the path,
// detach the memory copy, and reopen through the journaled restart path.
// The caller rebinds the tracked point set (the reopen reconstructs an
// identical copy from the file; the build's own set is the one the caller
// holds and mutates).
func (m *Materialization) persistBuild(opt *MatOptions) (*Materialization, error) {
	if err := m.SaveTo(opt.Path); err != nil {
		_ = m.m.Close()
		return nil, err
	}
	if err := m.m.Close(); err != nil {
		return nil, err
	}
	return m.db.OpenMaterialization(opt.Path, opt)
}

// materialize packs the lists into a fresh memory page file attached to
// the DB's shared buffer pool as the "mat" tenant.
func (db *DB) materialize(seeds []core.MatSeed, maxK int, opt *MatOptions) (*core.Materialized, error) {
	pageSize, buffer := opt.defaults()
	file := storage.NewMemFile(pageSize)
	bm := db.pool.attach("mat", file, buffer)
	m, err := db.searcher.MatBuildBuffer(seeds, maxK, file, bm, nil)
	if err != nil {
		_ = bm.Detach()
		return nil, err
	}
	return m, nil
}

func seedsForEdgeSet(db *DB, ps *EdgePoints) ([]core.MatSeed, error) {
	return core.SeedsUnrestricted(ps.s, db.store)
}

// MaxK returns the largest query k the lists support.
func (m *Materialization) MaxK() int { return m.m.MaxK() }

// NodePoints returns the tracked node-resident point set, nil when the
// materialization tracks an edge-resident one. For a materialization
// reopened with OpenMaterialization this is the set reconstructed from the
// file — the set to query with.
func (m *Materialization) NodePoints() *NodePoints { return m.node }

// EdgePoints returns the tracked edge-resident point set, nil when the
// materialization tracks a node-resident one.
func (m *Materialization) EdgePoints() *EdgePoints { return m.edge }

// IOStats returns the list-file traffic.
func (m *Materialization) IOStats() IOStats {
	s := m.m.Stats()
	return IOStats{Reads: s.Reads, Hits: s.Hits, Writes: s.Writes}
}

// ResetIOStats zeroes the list-file counters.
func (m *Materialization) ResetIOStats() { m.m.ResetStats() }

// Flush writes dirty list pages back to the file.
func (m *Materialization) Flush() error { return m.m.Flush() }

// Close detaches the materialization from the planner (when it is the
// attached one) and its list pages from the shared buffer pool (flushing
// dirty ones), and closes the backing files of a reopened materialization.
// Queries through this materialization must not be in flight and the
// materialization must not be used afterwards.
func (m *Materialization) Close() error {
	m.db.planMat.CompareAndSwap(m, nil)
	err := m.m.Close()
	if m.file != nil {
		if cerr := m.file.Close(); err == nil {
			err = cerr
		}
	}
	if m.jfile != nil {
		if cerr := m.jfile.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// InsertNode places a new point on node n of the tracked node-resident set
// and updates the affected lists (the insertion algorithm of Section 4.1).
// The operation is atomic: on any error the point set and the lists are
// rolled back to their pre-operation state.
func (m *Materialization) InsertNode(n NodeID) (PointID, Stats, error) {
	return m.insertNode(m.db.searcher, n)
}

// InsertNodeContext is InsertNode under a context. An operation abandoned
// mid-flight (cancellation, deadline, budget — the typed exec errors) is
// rolled back through the repair journal before the error returns: the
// materialization stays consistent and queryable, and the insertion simply
// did not happen. Deadlines and budgets are therefore a routine control
// for maintenance traffic, not an emergency-only guardrail.
func (m *Materialization) InsertNodeContext(ctx context.Context, n NodeID, opt *QueryOptions) (PointID, Stats, error) {
	ec, cancel, err := m.db.newExec(ctx, opt)
	if err != nil {
		return -1, Stats{}, err
	}
	defer cancel()
	return m.insertNode(m.db.searcher.Bound(ec), n)
}

func (m *Materialization) insertNode(s *core.Searcher, n NodeID) (PointID, Stats, error) {
	if m.node == nil {
		return -1, Stats{}, fmt.Errorf("graphrnn: materialization does not track a node point set")
	}
	if err := m.recoverPending(); err != nil {
		return -1, Stats{}, err
	}
	p, err := m.node.Place(n)
	if err != nil {
		return -1, Stats{}, err
	}
	rec := core.PointRecord{U: graph.NodeID(n), V: graph.NodeID(n)}
	if err := m.begin(&matPendingOp{insert: true, p: p}, rec); err != nil {
		_ = m.node.Delete(p)
		return -1, Stats{}, err
	}
	st, err := s.MatInsert(m.m, []core.MatSeed{{Node: graph.NodeID(n), P: points.PointID(p), D: 0}})
	if err != nil {
		return -1, statsOf(st), m.abort(err)
	}
	if err := m.commit(p, rec); err != nil {
		return -1, statsOf(st), err
	}
	return p, statsOf(st), nil
}

// InsertEdge places a new point on edge (u,v) of the tracked edge-resident
// set and updates the affected lists. Atomic like InsertNode.
func (m *Materialization) InsertEdge(u, v NodeID, pos float64) (PointID, Stats, error) {
	return m.insertEdge(m.db.searcher, u, v, pos)
}

// InsertEdgeContext is InsertEdge under a context; see InsertNodeContext —
// an abandoned operation is rolled back, never left partially applied.
func (m *Materialization) InsertEdgeContext(ctx context.Context, u, v NodeID, pos float64, opt *QueryOptions) (PointID, Stats, error) {
	ec, cancel, err := m.db.newExec(ctx, opt)
	if err != nil {
		return -1, Stats{}, err
	}
	defer cancel()
	return m.insertEdge(m.db.searcher.Bound(ec), u, v, pos)
}

func (m *Materialization) insertEdge(s *core.Searcher, u, v NodeID, pos float64) (PointID, Stats, error) {
	if m.edge == nil {
		return -1, Stats{}, fmt.Errorf("graphrnn: materialization does not track an edge point set")
	}
	if err := m.recoverPending(); err != nil {
		return -1, Stats{}, err
	}
	w, ok := m.db.graph.EdgeWeight(u, v)
	if !ok {
		return -1, Stats{}, fmt.Errorf("graphrnn: no edge (%d,%d): %w", u, v, ErrMissingEdge)
	}
	p, err := m.edge.Place(u, v, pos)
	if err != nil {
		return -1, Stats{}, err
	}
	//lint:ignore vetrnn/commaok p was created by the Place call two lines up on the same set
	loc, _ := m.edge.LocationOf(p)
	rec := core.PointRecord{U: graph.NodeID(loc.U), V: graph.NodeID(loc.V), Pos: loc.Pos}
	if err := m.begin(&matPendingOp{insert: true, p: p}, rec); err != nil {
		_ = m.edge.Delete(p)
		return -1, Stats{}, err
	}
	seeds := []core.MatSeed{
		{Node: graph.NodeID(loc.U), P: points.PointID(p), D: loc.Pos},
		{Node: graph.NodeID(loc.V), P: points.PointID(p), D: w - loc.Pos},
	}
	st, err := s.MatInsert(m.m, seeds)
	if err != nil {
		return -1, statsOf(st), m.abort(err)
	}
	if err := m.commit(p, rec); err != nil {
		return -1, statsOf(st), err
	}
	return p, statsOf(st), nil
}

// DeletePointContext is DeletePoint under a context; see InsertNodeContext
// — an abandoned operation is rolled back (the point reappears in the
// tracked set), never left partially applied.
func (m *Materialization) DeletePointContext(ctx context.Context, p PointID, opt *QueryOptions) (Stats, error) {
	ec, cancel, err := m.db.newExec(ctx, opt)
	if err != nil {
		return Stats{}, err
	}
	defer cancel()
	return m.deletePoint(m.db.searcher.Bound(ec), p)
}

// DeletePoint removes point p from the tracked set and repairs the affected
// lists with the two-step border-node algorithm (Fig 10). Atomic like
// InsertNode.
func (m *Materialization) DeletePoint(p PointID) (Stats, error) {
	return m.deletePoint(m.db.searcher, p)
}

func (m *Materialization) deletePoint(s *core.Searcher, p PointID) (Stats, error) {
	if err := m.recoverPending(); err != nil {
		return Stats{}, err
	}
	pid := points.PointID(p)
	var seeds []core.MatSeed
	var pend matPendingOp
	switch {
	case m.node != nil:
		n, ok := m.node.NodeOf(p)
		if !ok {
			return Stats{}, fmt.Errorf("graphrnn: point %d does not exist", p)
		}
		seeds = []core.MatSeed{{Node: graph.NodeID(n), P: pid, D: 0}}
		pend = matPendingOp{p: p, node: n}
	case m.edge != nil:
		loc, ok := m.edge.LocationOf(p)
		if !ok {
			return Stats{}, fmt.Errorf("graphrnn: point %d does not exist", p)
		}
		w, ok := m.db.graph.EdgeWeight(loc.U, loc.V)
		if !ok {
			// A tracked point on an edge the graph does not know cannot be
			// deleted consistently: its seed distances would be garbage.
			return Stats{}, fmt.Errorf("graphrnn: point %d lies on edge (%d,%d): %w", p, loc.U, loc.V, ErrMissingEdge)
		}
		seeds = []core.MatSeed{
			{Node: graph.NodeID(loc.U), P: pid, D: loc.Pos},
			{Node: graph.NodeID(loc.V), P: pid, D: w - loc.Pos},
		}
		pend = matPendingOp{p: p, loc: loc}
	default:
		return Stats{}, fmt.Errorf("graphrnn: materialization tracks no point set")
	}
	if err := m.begin(&pend, core.PointAbsent); err != nil {
		return Stats{}, err
	}
	var err error
	if m.node != nil {
		err = m.node.Delete(p)
	} else {
		err = m.edge.Delete(p)
	}
	if err != nil {
		// Nothing mutated yet; close the empty operation frame.
		m.pending = nil
		_ = m.m.RollbackRepair()
		return Stats{}, err
	}
	st, err := s.MatDelete(m.m, pid, seeds)
	if err != nil {
		return statsOf(st), m.abort(err)
	}
	if err := m.commit(p, core.PointAbsent); err != nil {
		return statsOf(st), err
	}
	return statsOf(st), nil
}

// --- operation framing -----------------------------------------------------

// begin opens the journaled operation covering pend. rec is the committed
// point record (persisted materializations journal it as the operation
// descriptor).
func (m *Materialization) begin(pend *matPendingOp, rec core.PointRecord) error {
	if err := m.m.BeginRepair(matOpMeta(pend, rec)); err != nil {
		return err
	}
	m.pending = pend
	return nil
}

// commit flips the operation committed; on failure the operation stays
// pending and Recover rolls it back.
func (m *Materialization) commit(p PointID, rec core.PointRecord) error {
	if err := m.m.CommitRepair(points.PointID(p), rec); err != nil {
		return fmt.Errorf("graphrnn: maintenance commit failed; call Recover before further use: %w", err)
	}
	m.pending = nil
	return nil
}

// abort rolls the abandoned operation back inline and returns opErr (the
// typed exec error, or whatever failed the repair). If the rollback itself
// fails — a second I/O fault — the operation stays pending: RepairState
// reports it and Recover retries.
func (m *Materialization) abort(opErr error) error {
	if m.testCrash {
		m.m.AbandonRepair()
		return opErr
	}
	if rbErr := m.rollbackPending(); rbErr != nil {
		return fmt.Errorf("graphrnn: rollback failed (%v); call Recover before further use: %w", rbErr, opErr)
	}
	return opErr
}

// rollbackPending undoes the pending operation: lists from the journal's
// before-images, then the point-set mutation.
func (m *Materialization) rollbackPending() error {
	if err := m.m.RollbackRepair(); err != nil {
		return err
	}
	pend := m.pending
	if pend == nil {
		return nil
	}
	var err error
	switch {
	case pend.insert && m.node != nil:
		err = m.node.Delete(pend.p)
	case pend.insert:
		err = m.edge.Delete(pend.p)
	case m.node != nil:
		err = m.node.s.Restore(points.PointID(pend.p), graph.NodeID(pend.node))
	default:
		err = m.edge.s.Restore(points.PointID(pend.p), graph.NodeID(pend.loc.U), graph.NodeID(pend.loc.V), pend.loc.Pos)
	}
	if err != nil {
		return err
	}
	m.pending = nil
	return nil
}

// recoverPending auto-recovers a pending operation before a new one
// starts ("replay to a consistent state on next use").
func (m *Materialization) recoverPending() error {
	if m.RepairState() == RepairClean {
		return nil
	}
	_, err := m.Recover()
	return err
}

// matOpMeta encodes the operation descriptor logged as the journal's first
// record: op kind, point id and the would-be committed point record.
// Rollback is driven by before-images, so the descriptor is informational
// (it makes journals self-describing for debugging).
func matOpMeta(pend *matPendingOp, rec core.PointRecord) []byte {
	buf := make([]byte, 1+4+16)
	if pend.insert {
		buf[0] = 1
	} else {
		buf[0] = 2
	}
	binary.LittleEndian.PutUint32(buf[1:], uint32(pend.p))
	binary.LittleEndian.PutUint32(buf[5:], uint32(rec.U))
	binary.LittleEndian.PutUint32(buf[9:], uint32(rec.V))
	binary.LittleEndian.PutUint64(buf[13:], math.Float64bits(rec.Pos))
	return buf
}

func statsOf(st core.Stats) Stats {
	return Stats{
		NodesExpanded: st.NodesExpanded,
		NodesScanned:  st.NodesScanned,
		RangeNN:       st.RangeNN,
		Verifications: st.Verifications,
		MatReads:      st.MatReads,
		LabelReads:    st.LabelReads,
		LabelEntries:  st.LabelEntries,
		HeapPushes:    st.HeapPushes,
		HeapPops:      st.HeapPops,
	}
}
