package graphrnn

import (
	"context"
	"fmt"
	"time"

	"graphrnn/internal/exec"
)

// This file holds the execution-bound plumbing of the engine (QueryOptions,
// Budget, the typed error taxonomy) plus the deprecated per-shape *Context
// entry points, which are thin shims over Run.
//
// # Error taxonomy
//
//	ErrCanceled         the context was canceled mid-flight
//	ErrDeadlineExceeded the context's or QueryOptions' deadline passed
//	ErrBudgetExceeded   the query exhausted MaxNodes or MaxIOReads
//
// All three are returned wrapped; match them with errors.Is. Alongside the
// error the query returns a partial *Result: the members confirmed and the
// work counted up to the point it was abandoned. A query issued with an
// already-expired deadline fails upfront, before any page I/O.
//
// Cancellation is polled on every main-expansion step and every
// exec.CheckStride pops inside sub-expansions, so a canceled query returns
// within one expansion step.

// Typed execution errors, re-exported from the engine substrate.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = exec.ErrCanceled
	// ErrDeadlineExceeded reports that the query's deadline passed.
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
	// ErrBudgetExceeded reports that the query exhausted its work budget.
	ErrBudgetExceeded = exec.ErrBudgetExceeded
)

// IsExecErr reports whether err is one of the typed execution-control
// errors — the errors that accompany a partial Result rather than
// invalidate it.
func IsExecErr(err error) bool { return exec.IsExecErr(err) }

// Budget caps the work one query may perform. The zero Budget is
// unlimited.
type Budget struct {
	// MaxNodes bounds the total nodes popped by the query: the main
	// expansion plus every sub-query (range-NN probes, verifications, the
	// lazy-EP point heap). 0 = unlimited.
	MaxNodes int64
	// MaxIOReads bounds the physical page reads observed on the DB's
	// buffer pool while the query runs. Under concurrent traffic the
	// charge is approximate: overlapping queries' faults count toward
	// whichever budget trips first. 0 = unlimited.
	MaxIOReads int64
}

// QueryOptions bounds one query. Embedded in Query (the zero value applies
// only the Run context's own cancellation/deadline); the deprecated
// *Context entry points take it as a trailing pointer.
type QueryOptions struct {
	// Timeout, when positive, derives a per-query deadline from the
	// context at query start (the tighter of the two deadlines wins).
	Timeout time.Duration
	// Budget caps the query's work.
	Budget Budget
}

// orZero dereferences the deprecated entry points' optional pointer form.
func (o *QueryOptions) orZero() QueryOptions {
	if o == nil {
		return QueryOptions{}
	}
	return *o
}

// newExec builds the execution context of one query: the per-query
// deadline, the budget, and the I/O counter hook of the DB's buffer pool.
// It fails upfront — before the caller performs any page I/O — when the
// deadline has already passed or the context is already canceled. cancel
// must be called when the query finishes to release the timeout timer.
func (db *DB) newExec(ctx context.Context, opt *QueryOptions) (ec *exec.Ctx, cancel func(), err error) {
	cancel = func() {}
	if opt != nil && opt.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
	}
	var b exec.Budget
	if opt != nil {
		b = exec.Budget(opt.Budget)
	}
	var io func() int64
	if b.MaxIOReads > 0 {
		io = db.pool.p.Reads
	}
	ec = exec.New(ctx, b, io)
	if err := ec.Check(0); err != nil {
		cancel()
		return nil, nil, err
	}
	// A deadline that has already passed fails upfront even when the
	// context's timer has not fired yet (timers carry delivery latency;
	// the wall clock does not) — so a microscopic Timeout rejects
	// deterministically instead of racing the first poll.
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		cancel()
		return nil, nil, fmt.Errorf("%w: deadline already passed at query start", ErrDeadlineExceeded)
	}
	return ec, cancel, nil
}

// RNNContext is RNN under a context: the query stops with a typed error
// (and a partial Result) when ctx is canceled, a deadline passes, or the
// budget runs out.
//
// Deprecated: use [DB.Run]; Query embeds the QueryOptions.
func (db *DB) RNNContext(ctx context.Context, ps pointsArg, q NodeID, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	return db.Run(ctx, Query{
		Kind: KindRNN, Target: NodeLocation(q), K: k, Points: ps,
		Algorithm: algo, Strict: true, QueryOptions: opt.orZero(),
	})
}

// BichromaticRNNContext is BichromaticRNN under a context.
//
// Deprecated: use [DB.Run] with a Query of KindBichromatic.
func (db *DB) BichromaticRNNContext(ctx context.Context, cands, sites pointsArg, q NodeID, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	return db.Run(ctx, Query{
		Kind: KindBichromatic, Target: NodeLocation(q), K: k, Points: cands, Sites: sites,
		Algorithm: algo, Strict: true, QueryOptions: opt.orZero(),
	})
}

// ContinuousRNNContext is ContinuousRNN under a context.
//
// Deprecated: use [DB.Run] with a Query of KindContinuous.
func (db *DB) ContinuousRNNContext(ctx context.Context, ps pointsArg, route []NodeID, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	return db.Run(ctx, Query{
		Kind: KindContinuous, Route: route, K: k, Points: ps,
		Algorithm: algo, Strict: true, QueryOptions: opt.orZero(),
	})
}

// EdgeRNNContext is EdgeRNN under a context.
//
// Deprecated: use [DB.Run] with a Query of KindRNN over an edge-resident
// Points set.
func (db *DB) EdgeRNNContext(ctx context.Context, ps edgeArg, q Location, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	return db.Run(ctx, Query{
		Kind: KindRNN, Target: q, K: k, Points: ps,
		Algorithm: algo, Strict: true, QueryOptions: opt.orZero(),
	})
}

// EdgeBichromaticRNNContext is EdgeBichromaticRNN under a context.
//
// Deprecated: use [DB.Run] with a Query of KindBichromatic over
// edge-resident Points and Sites.
func (db *DB) EdgeBichromaticRNNContext(ctx context.Context, cands, sites edgeArg, q Location, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	return db.Run(ctx, Query{
		Kind: KindBichromatic, Target: q, K: k, Points: cands, Sites: sites,
		Algorithm: algo, Strict: true, QueryOptions: opt.orZero(),
	})
}

// EdgeContinuousRNNContext is EdgeContinuousRNN under a context.
//
// Deprecated: use [DB.Run] with a Query of KindContinuous over an
// edge-resident Points set.
func (db *DB) EdgeContinuousRNNContext(ctx context.Context, ps edgeArg, route []NodeID, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	return db.Run(ctx, Query{
		Kind: KindContinuous, Route: route, K: k, Points: ps,
		Algorithm: algo, Strict: true, QueryOptions: opt.orZero(),
	})
}

// KNNContext is KNN under a context. On a typed execution error the
// neighbors found so far are returned alongside it.
//
// Deprecated: use [DB.Run] with a Query of KindKNN.
func (db *DB) KNNContext(ctx context.Context, ps pointsArg, n NodeID, k int, opt *QueryOptions) ([]Neighbor, error) {
	res, err := db.Run(ctx, Query{
		Kind: KindKNN, Target: NodeLocation(n), K: k, Points: ps, QueryOptions: opt.orZero(),
	})
	if res == nil {
		return nil, err
	}
	return res.Neighbors, err
}

// EdgeKNNContext is EdgeKNN under a context.
//
// Deprecated: use [DB.Run] with a Query of KindKNN over an edge-resident
// Points set.
func (db *DB) EdgeKNNContext(ctx context.Context, ps edgeArg, q Location, k int, opt *QueryOptions) ([]Neighbor, error) {
	res, err := db.Run(ctx, Query{
		Kind: KindKNN, Target: q, K: k, Points: ps, QueryOptions: opt.orZero(),
	})
	if res == nil {
		return nil, err
	}
	return res.Neighbors, err
}
