package graphrnn

import (
	"context"
	"time"

	"graphrnn/internal/exec"
)

// This file is the engine layer of the execution model: every public query
// entry point has a Context variant that threads cancellation, a per-query
// deadline and work budgets through the algorithm loops in internal/core
// and the hub-label intersection path. The plain variants (RNN, KNN, ...)
// are the unbounded special case and pay no bookkeeping.
//
// # Error taxonomy
//
//	ErrCanceled         the context was canceled mid-flight
//	ErrDeadlineExceeded the context's or QueryOptions' deadline passed
//	ErrBudgetExceeded   the query exhausted MaxNodes or MaxIOReads
//
// All three are returned wrapped; match them with errors.Is. Alongside the
// error the query returns a partial *Result: the members confirmed and the
// work counted up to the point it was abandoned. A query issued with an
// already-expired deadline fails upfront, before any page I/O.
//
// Cancellation is polled on every main-expansion step and every
// exec.CheckStride pops inside sub-expansions, so a canceled query returns
// within one expansion step.

// Typed execution errors, re-exported from the engine substrate.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = exec.ErrCanceled
	// ErrDeadlineExceeded reports that the query's deadline passed.
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
	// ErrBudgetExceeded reports that the query exhausted its work budget.
	ErrBudgetExceeded = exec.ErrBudgetExceeded
)

// IsExecErr reports whether err is one of the typed execution-control
// errors — the errors that accompany a partial Result rather than
// invalidate it.
func IsExecErr(err error) bool { return exec.IsExecErr(err) }

// Budget caps the work one query may perform. The zero Budget is
// unlimited.
type Budget struct {
	// MaxNodes bounds the total nodes popped by the query: the main
	// expansion plus every sub-query (range-NN probes, verifications, the
	// lazy-EP point heap). 0 = unlimited.
	MaxNodes int64
	// MaxIOReads bounds the physical page reads observed on the DB's
	// buffer pool while the query runs. Under concurrent traffic the
	// charge is approximate: overlapping queries' faults count toward
	// whichever budget trips first. 0 = unlimited.
	MaxIOReads int64
}

// QueryOptions bounds one query issued through a Context entry point. A
// nil *QueryOptions applies only the context's own cancellation/deadline.
type QueryOptions struct {
	// Timeout, when positive, derives a per-query deadline from the
	// context at query start (the tighter of the two deadlines wins).
	Timeout time.Duration
	// Budget caps the query's work.
	Budget Budget
}

// newExec builds the execution context of one query: the per-query
// deadline, the budget, and the I/O counter hook of the DB's buffer pool.
// It fails upfront — before the caller performs any page I/O — when the
// deadline has already passed or the context is already canceled. cancel
// must be called when the query finishes to release the timeout timer.
func (db *DB) newExec(ctx context.Context, opt *QueryOptions) (ec *exec.Ctx, cancel func(), err error) {
	cancel = func() {}
	if opt != nil && opt.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
	}
	var b exec.Budget
	if opt != nil {
		b = exec.Budget(opt.Budget)
	}
	var io func() int64
	if b.MaxIOReads > 0 {
		io = db.pool.p.Reads
	}
	ec = exec.New(ctx, b, io)
	if err := ec.Check(0); err != nil {
		cancel()
		return nil, nil, err
	}
	return ec, cancel, nil
}

// RNNContext is RNN under a context: the query stops with a typed error
// (and a partial Result) when ctx is canceled, a deadline passes, or the
// budget runs out.
func (db *DB) RNNContext(ctx context.Context, ps pointsArg, q NodeID, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	ec, cancel, err := db.newExec(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return db.runRNN(ec, ps, q, k, algo)
}

// BichromaticRNNContext is BichromaticRNN under a context.
func (db *DB) BichromaticRNNContext(ctx context.Context, cands, sites pointsArg, q NodeID, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	ec, cancel, err := db.newExec(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return db.runBichromaticRNN(ec, cands, sites, q, k, algo)
}

// ContinuousRNNContext is ContinuousRNN under a context.
func (db *DB) ContinuousRNNContext(ctx context.Context, ps pointsArg, route []NodeID, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	ec, cancel, err := db.newExec(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return db.runContinuousRNN(ec, ps, route, k, algo)
}

// EdgeRNNContext is EdgeRNN under a context.
func (db *DB) EdgeRNNContext(ctx context.Context, ps edgeArg, q Location, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	ec, cancel, err := db.newExec(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return db.runEdgeRNN(ec, ps, q, k, algo)
}

// EdgeBichromaticRNNContext is EdgeBichromaticRNN under a context.
func (db *DB) EdgeBichromaticRNNContext(ctx context.Context, cands, sites edgeArg, q Location, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	ec, cancel, err := db.newExec(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return db.runEdgeBichromaticRNN(ec, cands, sites, q, k, algo)
}

// EdgeContinuousRNNContext is EdgeContinuousRNN under a context.
func (db *DB) EdgeContinuousRNNContext(ctx context.Context, ps edgeArg, route []NodeID, k int, algo Algorithm, opt *QueryOptions) (*Result, error) {
	ec, cancel, err := db.newExec(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return db.runEdgeContinuousRNN(ec, ps, route, k, algo)
}

// KNNContext is KNN under a context. On a typed execution error the
// neighbors found so far are returned alongside it.
func (db *DB) KNNContext(ctx context.Context, ps pointsArg, n NodeID, k int, opt *QueryOptions) ([]Neighbor, error) {
	ec, cancel, err := db.newExec(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer cancel()
	out, err := db.searcher.Bound(ec).KNN(ps.nodeView().v, toNodeIDs([]NodeID{n})[0], k)
	return toNeighbors(out), err
}

// EdgeKNNContext is EdgeKNN under a context.
func (db *DB) EdgeKNNContext(ctx context.Context, ps edgeArg, q Location, k int, opt *QueryOptions) ([]Neighbor, error) {
	ec, cancel, err := db.newExec(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer cancel()
	out, err := db.searcher.Bound(ec).UKNN(ps.edgeView().v, q.toLoc(), k)
	return toNeighbors(out), err
}
