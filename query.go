package graphrnn

import (
	"context"
	"fmt"

	"graphrnn/internal/core"
	"graphrnn/internal/exec"
)

// Algorithm selects a query processing strategy. The zero Algorithm (or
// Auto) defers the choice to the planner, which picks the fastest attached
// substrate that can answer the query's shape — see DB.Plan.
type Algorithm struct {
	kind algoKind
	mat  *Materialization
	hub  *HubLabelIndex
}

type algoKind int

const (
	// algoAuto is the zero value: the planner chooses the substrate.
	algoAuto algoKind = iota
	algoEager
	algoLazy
	algoLazyEP
	algoEagerM
	algoHub
	algoBrute
	// algoExpansion is the planner's name for the single forward-expansion
	// KNN search; it is not constructible through the public surface.
	algoExpansion
)

// Auto defers the substrate choice to the planner (the zero Algorithm).
func Auto() Algorithm { return Algorithm{} }

// Eager prunes every visited node with a range-NN probe (Section 3.2).
// Lowest I/O in most settings; CPU-heavier than Lazy.
func Eager() Algorithm { return Algorithm{kind: algoEager} }

// Lazy prunes only when data points are discovered, via verification side
// effects (Section 3.3). Low CPU; unsuitable for low-diameter networks.
func Lazy() Algorithm { return Algorithm{kind: algoLazy} }

// LazyEP is Lazy with extended pruning via a parallel point-expansion heap
// (Section 4.2).
func LazyEP() Algorithm { return Algorithm{kind: algoLazyEP} }

// EagerM is Eager over the materialized K-NN lists m (Section 4.1); m must
// have been built over the queried point set (bichromatic: over the sites).
func EagerM(m *Materialization) Algorithm { return Algorithm{kind: algoEagerM, mat: m} }

// HubLabel answers by hub-label intersection over idx — no network
// expansion at all. idx must have been built over the queried point set
// (bichromatic: over the sites); monochromatic and continuous queries
// support k <= idx.MaxK(). Node-resident point sets only.
func HubLabel(idx *HubLabelIndex) Algorithm { return Algorithm{kind: algoHub, hub: idx} }

// AlgorithmHubLabel is the explicit name of the hub-label strategy, as used
// by the serving and experiment surfaces; it is HubLabel.
var AlgorithmHubLabel = HubLabel

// BruteForce verifies every data point; the oracle the paper's Section 3.1
// dismisses as a baseline. Useful for testing and tiny graphs.
func BruteForce() Algorithm { return Algorithm{kind: algoBrute} }

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a.kind {
	case algoAuto:
		return "auto"
	case algoEager:
		return "eager"
	case algoLazy:
		return "lazy"
	case algoLazyEP:
		return "lazy-EP"
	case algoEagerM:
		return "eager-M"
	case algoHub:
		return "hub-label"
	case algoExpansion:
		return "expansion"
	default:
		return "brute-force"
	}
}

// Stats describes the work performed by one query.
type Stats struct {
	// NodesExpanded counts nodes popped by the main query-side expansion.
	NodesExpanded int64
	// NodesScanned counts nodes popped by sub-queries (range-NN probes,
	// verifications, lazy-EP's point heap).
	NodesScanned int64
	// RangeNN counts range-NN probes (eager family).
	RangeNN int64
	// Verifications counts verification sub-queries.
	Verifications int64
	// MatReads counts materialized list lookups (eager-M).
	MatReads int64
	// LabelReads counts hub label fetches (hub-label).
	LabelReads int64
	// LabelEntries counts label and hub-list entries scanned (hub-label).
	LabelEntries int64
	// HeapPushes and HeapPops count priority-queue traffic.
	HeapPushes int64
	HeapPops   int64
}

// add accumulates o into s (batch aggregation).
func (s *Stats) add(o Stats) {
	s.NodesExpanded += o.NodesExpanded
	s.NodesScanned += o.NodesScanned
	s.RangeNN += o.RangeNN
	s.Verifications += o.Verifications
	s.MatReads += o.MatReads
	s.LabelReads += o.LabelReads
	s.LabelEntries += o.LabelEntries
	s.HeapPushes += o.HeapPushes
	s.HeapPops += o.HeapPops
}

// Result is a query answer.
type Result struct {
	// Points holds the reverse k-nearest neighbors in ascending id order
	// (empty for KindKNN, which answers in Neighbors).
	Points []PointID
	// Neighbors holds KindKNN answers in ascending distance order.
	Neighbors []Neighbor
	// Stats describes the work performed.
	Stats Stats
	// Plan records the planner's decision. Every query carries one — the
	// deprecated entry points shim onto Run, so their Results report the
	// strict dispatch they asked for.
	Plan Plan
}

// wrapResult converts a core result to the public shape, copying every
// counter — including the hub-label LabelReads/LabelEntries, which an
// earlier version of this function silently dropped. A non-nil result
// accompanied by an execution-control error (cancellation, deadline,
// budget) is passed through as the partial answer.
func wrapResult(r *core.Result, err error) (*Result, error) {
	if r == nil {
		return nil, err
	}
	return &Result{Points: fromPointIDs(r.Points), Stats: statsOf(r.Stats)}, err
}

// pointsArg accepts either a *NodePoints or a NodePointsView.
type pointsArg interface {
	PointSet
	nodeView() NodePointsView
}

func (ps *NodePoints) nodeView() NodePointsView   { return ps.View() }
func (v NodePointsView) nodeView() NodePointsView { return v }

type edgeArg interface {
	PointSet
	edgeView() EdgePointsView
}

func (ps *EdgePoints) edgeView() EdgePointsView      { return ps.View() }
func (ps *PagedEdgePoints) edgeView() EdgePointsView { return ps.View() }
func (v EdgePointsView) edgeView() EdgePointsView    { return v }

// RNN answers a monochromatic reverse k-nearest-neighbor query from node q
// over a node-resident point set, running to completion.
//
// Deprecated: use [DB.Run] with a Query of KindRNN. RNN is a thin shim over
// the engine and keeps the strict per-algorithm semantics (an algorithm
// that cannot run the query's shape errors instead of falling back).
func (db *DB) RNN(ps pointsArg, q NodeID, k int, algo Algorithm) (*Result, error) {
	return db.Run(context.Background(), Query{
		Kind: KindRNN, Target: NodeLocation(q), K: k, Points: ps,
		Algorithm: algo, Strict: true,
	})
}

func (db *DB) runRNN(ec *exec.Ctx, ps pointsArg, q NodeID, k int, algo Algorithm) (*Result, error) {
	s := db.searcher.Bound(ec)
	view := ps.nodeView().v
	qn := toNodeIDs([]NodeID{q})[0]
	switch algo.kind {
	case algoEager:
		return wrapResult(s.EagerRkNN(view, qn, k))
	case algoLazy:
		return wrapResult(s.LazyRkNN(view, qn, k))
	case algoLazyEP:
		return wrapResult(s.LazyEPRkNN(view, qn, k))
	case algoEagerM:
		m, err := algo.materialized()
		if err != nil {
			return nil, err
		}
		return wrapResult(s.EagerMRkNN(view, m, qn, k))
	case algoHub:
		h, err := algo.hubIndex()
		if err != nil {
			return nil, err
		}
		return wrapResult(h.runRNN(ec, view, q, k))
	default:
		return wrapResult(s.BruteRkNN(view, qn, k))
	}
}

// BichromaticRNN answers bRkNN: the candidates of cands closer to q than to
// their k-th nearest site of sites.
//
// Deprecated: use [DB.Run] with a Query of KindBichromatic (Points holds
// the candidates, Sites the sites).
func (db *DB) BichromaticRNN(cands, sites pointsArg, q NodeID, k int, algo Algorithm) (*Result, error) {
	return db.Run(context.Background(), Query{
		Kind: KindBichromatic, Target: NodeLocation(q), K: k,
		Points: cands, Sites: sites, Algorithm: algo, Strict: true,
	})
}

func (db *DB) runBichromaticRNN(ec *exec.Ctx, cands, sites pointsArg, q NodeID, k int, algo Algorithm) (*Result, error) {
	s := db.searcher.Bound(ec)
	cv, sv := cands.nodeView().v, sites.nodeView().v
	qn := toNodeIDs([]NodeID{q})[0]
	switch algo.kind {
	case algoEager:
		return wrapResult(s.EagerBichromatic(cv, sv, qn, k))
	case algoLazy:
		return wrapResult(s.LazyBichromatic(cv, sv, qn, k))
	case algoLazyEP:
		return wrapResult(s.LazyEPBichromatic(cv, sv, qn, k))
	case algoEagerM:
		m, err := algo.materialized()
		if err != nil {
			return nil, err
		}
		return wrapResult(s.EagerMBichromatic(cv, sv, m, qn, k))
	case algoHub:
		h, err := algo.hubIndex()
		if err != nil {
			return nil, err
		}
		return wrapResult(h.runBichromatic(ec, cv, sv, q, k))
	default:
		return wrapResult(s.BruteBichromatic(cv, sv, qn, k))
	}
}

// ContinuousRNN answers cRkNN(route): the union of the RkNN sets of every
// route node (Section 5.1), computed in one traversal.
//
// Deprecated: use [DB.Run] with a Query of KindContinuous.
func (db *DB) ContinuousRNN(ps pointsArg, route []NodeID, k int, algo Algorithm) (*Result, error) {
	return db.Run(context.Background(), Query{
		Kind: KindContinuous, Route: route, K: k, Points: ps,
		Algorithm: algo, Strict: true,
	})
}

func (db *DB) runContinuousRNN(ec *exec.Ctx, ps pointsArg, route []NodeID, k int, algo Algorithm) (*Result, error) {
	s := db.searcher.Bound(ec)
	view := ps.nodeView().v
	r := toNodeIDs(route)
	switch algo.kind {
	case algoEager:
		return wrapResult(s.EagerContinuous(view, r, k))
	case algoLazy:
		return wrapResult(s.LazyContinuous(view, r, k))
	case algoLazyEP:
		return wrapResult(s.LazyEPContinuous(view, r, k))
	case algoEagerM:
		m, err := algo.materialized()
		if err != nil {
			return nil, err
		}
		return wrapResult(s.EagerMContinuous(view, m, r, k))
	case algoHub:
		h, err := algo.hubIndex()
		if err != nil {
			return nil, err
		}
		return wrapResult(h.runContinuous(ec, view, route, k))
	default:
		return wrapResult(s.BruteContinuous(view, r, k))
	}
}

// EdgeRNN answers a monochromatic RkNN query at an arbitrary location over
// an edge-resident point set (unrestricted networks, Section 5.2).
//
// Deprecated: use [DB.Run] with a Query of KindRNN over an edge-resident
// Points set (the Target Location may lie on an edge).
func (db *DB) EdgeRNN(ps edgeArg, q Location, k int, algo Algorithm) (*Result, error) {
	return db.Run(context.Background(), Query{
		Kind: KindRNN, Target: q, K: k, Points: ps, Algorithm: algo, Strict: true,
	})
}

func (db *DB) runEdgeRNN(ec *exec.Ctx, ps edgeArg, q Location, k int, algo Algorithm) (*Result, error) {
	s := db.searcher.Bound(ec)
	view := ps.edgeView().v
	loc := q.toLoc()
	switch algo.kind {
	case algoEager:
		return wrapResult(s.UEagerRkNN(view, loc, k))
	case algoLazy:
		return wrapResult(s.ULazyRkNN(view, loc, k))
	case algoLazyEP:
		return wrapResult(s.ULazyEPRkNN(view, loc, k))
	case algoEagerM:
		m, err := algo.materialized()
		if err != nil {
			return nil, err
		}
		return wrapResult(s.UEagerMRkNN(view, m, loc, k))
	case algoHub:
		return nil, errHubEdge()
	default:
		return wrapResult(s.UBruteRkNN(view, loc, k))
	}
}

// EdgeBichromaticRNN answers bRkNN over edge-resident candidates and sites.
//
// Deprecated: use [DB.Run] with a Query of KindBichromatic over
// edge-resident Points and Sites.
func (db *DB) EdgeBichromaticRNN(cands, sites edgeArg, q Location, k int, algo Algorithm) (*Result, error) {
	return db.Run(context.Background(), Query{
		Kind: KindBichromatic, Target: q, K: k, Points: cands, Sites: sites,
		Algorithm: algo, Strict: true,
	})
}

func (db *DB) runEdgeBichromaticRNN(ec *exec.Ctx, cands, sites edgeArg, q Location, k int, algo Algorithm) (*Result, error) {
	s := db.searcher.Bound(ec)
	cv, sv := cands.edgeView().v, sites.edgeView().v
	loc := q.toLoc()
	switch algo.kind {
	case algoEager:
		return wrapResult(s.UEagerBichromatic(cv, sv, loc, k))
	case algoLazy:
		return wrapResult(s.ULazyBichromatic(cv, sv, loc, k))
	case algoLazyEP:
		return wrapResult(s.ULazyEPBichromatic(cv, sv, loc, k))
	case algoEagerM:
		m, err := algo.materialized()
		if err != nil {
			return nil, err
		}
		return wrapResult(s.UEagerMBichromatic(cv, sv, m, loc, k))
	case algoHub:
		return nil, errHubEdge()
	default:
		return wrapResult(s.UBruteBichromatic(cv, sv, loc, k))
	}
}

// EdgeContinuousRNN answers cRkNN over a route on an unrestricted network.
//
// Deprecated: use [DB.Run] with a Query of KindContinuous over an
// edge-resident Points set.
func (db *DB) EdgeContinuousRNN(ps edgeArg, route []NodeID, k int, algo Algorithm) (*Result, error) {
	return db.Run(context.Background(), Query{
		Kind: KindContinuous, Route: route, K: k, Points: ps,
		Algorithm: algo, Strict: true,
	})
}

func (db *DB) runEdgeContinuousRNN(ec *exec.Ctx, ps edgeArg, route []NodeID, k int, algo Algorithm) (*Result, error) {
	s := db.searcher.Bound(ec)
	view := ps.edgeView().v
	r := toNodeIDs(route)
	switch algo.kind {
	case algoEager:
		return wrapResult(s.UEagerContinuous(view, r, k))
	case algoLazy:
		return wrapResult(s.ULazyContinuous(view, r, k))
	case algoLazyEP:
		return wrapResult(s.ULazyEPContinuous(view, r, k))
	case algoEagerM:
		m, err := algo.materialized()
		if err != nil {
			return nil, err
		}
		return wrapResult(s.UEagerMContinuous(view, m, r, k))
	case algoHub:
		return nil, errHubEdge()
	default:
		return wrapResult(s.UBruteContinuous(view, r, k))
	}
}

func (a Algorithm) materialized() (*core.Materialized, error) {
	if a.mat == nil || a.mat.m == nil {
		return nil, fmt.Errorf("graphrnn: EagerM requires a Materialization (use db.MaterializeNodePoints / MaterializeEdgePoints)")
	}
	return a.mat.m, nil
}

func (a Algorithm) hubIndex() (*HubLabelIndex, error) {
	if a.hub == nil || a.hub.idx == nil {
		return nil, fmt.Errorf("graphrnn: HubLabel requires a HubLabelIndex (use db.BuildHubLabelIndex)")
	}
	return a.hub, nil
}

func errHubEdge() error {
	return fmt.Errorf("graphrnn: hub-label supports node-resident point sets only")
}

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	P        PointID
	Distance float64
}

// KNN returns the k nearest data points of node n in ascending distance
// order (the forward counterpart of RNN; Section 3.1's NN search). Fewer
// than k results are returned when the reachable component holds fewer
// points.
//
// Deprecated: use [DB.Run] with a Query of KindKNN; the answer is in
// Result.Neighbors.
func (db *DB) KNN(ps pointsArg, n NodeID, k int) ([]Neighbor, error) {
	res, err := db.Run(context.Background(), Query{
		Kind: KindKNN, Target: NodeLocation(n), K: k, Points: ps,
	})
	if res == nil {
		return nil, err
	}
	return res.Neighbors, err
}

// EdgeKNN returns the k nearest edge-resident data points of an arbitrary
// location.
//
// Deprecated: use [DB.Run] with a Query of KindKNN over an edge-resident
// Points set.
func (db *DB) EdgeKNN(ps edgeArg, q Location, k int) ([]Neighbor, error) {
	res, err := db.Run(context.Background(), Query{
		Kind: KindKNN, Target: q, K: k, Points: ps,
	})
	if res == nil {
		return nil, err
	}
	return res.Neighbors, err
}

func toNeighbors(in []core.PointDist) []Neighbor {
	out := make([]Neighbor, len(in))
	for i, pd := range in {
		out[i] = Neighbor{P: PointID(pd.P), Distance: pd.D}
	}
	return out
}
