package graphrnn

import (
	"context"
	"encoding/binary"
	"testing"
)

// FuzzShardMerge feeds adversarial per-shard result sets — the bytes a
// compromised or buggy remote shard could answer with — through the
// coordinator's merge + verify pass and checks the safety properties
// that make scatter-gather trustworthy regardless of shard behavior:
//
//   - no panic, whatever the candidate ids (negative, huge, duplicated,
//     deleted, unsorted);
//   - the verified answer is sorted, duplicate-free, and a subset of the
//     brute-oracle answer (soundness: verification never confirms a
//     non-member);
//   - when the candidate union covers every true member, the verified
//     answer equals the oracle exactly (completeness: verification never
//     rejects a member).
//
// Input format: byte 0 picks the query kind, byte 1 the list count, the
// rest are little-endian int16 candidate ids dealt round-robin into the
// per-shard lists.
func FuzzShardMerge(f *testing.F) {
	db, ps := shardOracleEnv(f, "road", 200, 3, 23)
	sites, err := db.PlaceRandomNodePoints(41, 8)
	if err != nil {
		f.Fatal(err)
	}
	sh, err := db.Shard(ps, &ShardOptions{Shards: 3, Sites: sites, Runner: &fakeRunner{}})
	if err != nil {
		f.Fatal(err)
	}
	qnode := NodeID(db.Graph().NumNodes() / 2)
	route := db.RandomWalkRoute(3, 4)
	queries := []Query{
		{Kind: KindRNN, Target: NodeLocation(qnode), K: 2},
		{Kind: KindBichromatic, Target: NodeLocation(qnode), K: 2},
		{Kind: KindContinuous, Route: route, K: 2},
	}
	oracles := make([][]PointID, len(queries))
	members := make([]map[PointID]bool, len(queries))
	for i, q := range queries {
		uq := q
		uq.Points = ps
		if q.Kind == KindBichromatic {
			uq.Sites = sites
		}
		res, err := db.Run(context.Background(), uq)
		if err != nil {
			f.Fatal(err)
		}
		oracles[i] = res.Points
		members[i] = make(map[PointID]bool, len(res.Points))
		for _, p := range res.Points {
			members[i][p] = true
		}
	}

	// Seed corpus: the honest case (every live point as a candidate — a
	// guaranteed superset of the truth) for each kind, plus adversarial
	// shapes.
	for kind := range queries {
		honest := []byte{byte(kind), 3}
		for _, p := range ps.Points() {
			honest = binary.LittleEndian.AppendUint16(honest, uint16(p))
		}
		f.Add(honest)
	}
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 1, 0xff, 0xff, 0xff, 0x7f, 0x00, 0x80})
	f.Add([]byte{2, 4, 1, 0, 1, 0, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		qi := int(data[0]) % len(queries)
		nlists := int(data[1])%4 + 1
		lists := make([][]PointID, nlists)
		for i, rest := 0, data[2:]; len(rest) >= 2; i, rest = i+1, rest[2:] {
			p := PointID(int16(binary.LittleEndian.Uint16(rest)))
			lists[i%nlists] = append(lists[i%nlists], p)
		}
		cands := mergeCandidates(lists)
		for i := 1; i < len(cands); i++ {
			if cands[i-1] >= cands[i] {
				t.Fatalf("merge not strictly ascending at %d: %v", i, cands[:i+1])
			}
		}
		res, err := sh.verifyCandidates(nil, queries[qi], cands)
		if err != nil {
			t.Fatalf("verify over adversarial candidates errored: %v", err)
		}
		covered := true
		seen := make(map[PointID]bool, len(cands))
		for _, p := range cands {
			seen[p] = true
		}
		for _, p := range oracles[qi] {
			if !seen[p] {
				covered = false
				break
			}
		}
		for i, p := range res.Points {
			if i > 0 && res.Points[i-1] >= p {
				t.Fatalf("answer not strictly ascending: %v", res.Points)
			}
			if !members[qi][p] {
				t.Fatalf("verification confirmed non-member %d (kind %v)", p, queries[qi].Kind)
			}
		}
		if covered && len(res.Points) != len(oracles[qi]) {
			t.Fatalf("candidates covered the truth but answer %v != oracle %v (kind %v)",
				res.Points, oracles[qi], queries[qi].Kind)
		}
	})
}
